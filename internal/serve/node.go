package serve

import (
	"encoding/binary"
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/msg"
	"repro/internal/prof"
	"repro/internal/sim"
)

// Frame layout, multiplexed over one channel per ordered node pair.
// The receiver knows the sending node from the channel, so the header
// only carries what routing cannot: opcode, request id and key.
//
//	byte  0      opcode (read | write | resp | replicate)
//	byte  1      status (responses; 0 = ok)
//	bytes 8..15  request id (unique per client node)
//	bytes 16..23 key
//	bytes 24..   value payload (writes, read responses, replication)
const (
	hdrBytes    = 24
	frRead      = 1
	frWrite     = 2
	frResp      = 3
	frReplicate = 4
)

// Event dispatch: the opcode lives in the top byte of EventArg.I, the
// request id (when the event names one) in the low 56 bits.
const (
	evArrival = 1
	evTimeout = 2
	evLocal   = 3
	evService = 4
	opShift   = 56
	idMask    = (1 << opShift) - 1
)

// Counter indices. Counters are single-writer atomics — written only
// by the owning node's engine, loadable any time by the monitor's HTTP
// goroutine — following the prof.Hist contract.
const (
	cArrivals = iota
	cAdmitted
	cShed
	cCompleted
	cInSLO
	cTimeouts
	cLate
	cUnroutable
	cFailovers
	cDeadMarks
	cReads
	cWrites
	cLocal
	cServed
	cReplicas
	cBad
	numCtr
)

// maxWindows bounds the goodput time series; completions beyond it fold
// into the last cell rather than growing without bound.
const maxWindows = 8192

// pendingReq is one in-flight request on its client node.
type pendingReq struct {
	start  sim.Time
	key    uint64
	target int32
	read   bool
}

// srvReq is one request being serviced on its server node, pooled per
// node so a million-request run does not churn the heap.
type srvReq struct {
	at   sim.Time
	key  uint64
	id   uint64
	from int32
	read bool
}

// windowCell is one goodput accounting window on one node.
type windowCell struct {
	offered   uint64
	admitted  uint64
	completed uint64
	inSLO     uint64
	timeouts  uint64
}

// nodeState is one node's full serving state: its server role (owned
// shard folds, service pipeline) and its client role (arrival process,
// admission bucket, routing view, pending table). Every field is
// touched only by this node's engine events, which is what keeps
// serial and parallel runs bit-identical.
type nodeState struct {
	svc *Service
	id  int
	eng *sim.Engine
	np  *prof.NodeProf

	send []*msg.Sender
	recv []*msg.Receiver

	// Server role.
	srvCount uint64
	srvFold  uint64
	reqPool  []*srvReq
	bufPool  [][]byte

	// Client role.
	rng          *sim.Rand
	tokens       float64
	lastFill     sim.Time
	nextID       uint64
	arrivalsLeft int
	halted       bool
	pending      map[uint64]pendingReq
	outstanding  []int
	dead         []bool
	strikes      []int
	rrCtr        uint64
	aliveBuf     []int

	ctr     [numCtr]atomic.Uint64
	lat     prof.Hist
	windows []windowCell
}

func newNodeState(svc *Service, cl *core.Cluster, id, n int) *nodeState {
	return &nodeState{
		svc:          svc,
		id:           id,
		eng:          cl.EngineFor(id),
		np:           cl.Profiler().Node(id),
		send:         make([]*msg.Sender, n),
		recv:         make([]*msg.Receiver, n),
		rng:          sim.NewRand(svc.cfg.Seed ^ mix64(uint64(id)+0x5eed)),
		arrivalsLeft: svc.cfg.RequestsPerNode,
		pending:      make(map[uint64]pendingReq),
		outstanding:  make([]int, n),
		dead:         make([]bool, n),
		strikes:      make([]int, n),
		aliveBuf:     make([]int, 0, svc.cfg.ReplicaN),
	}
}

// bump increments a counter under the single-writer contract.
func (ns *nodeState) bump(c int) {
	v := &ns.ctr[c]
	v.Store(v.Load() + 1)
}

// win returns the accounting window covering virtual time t.
func (ns *nodeState) win(t sim.Time) *windowCell {
	idx := int(t / ns.svc.cfg.Window)
	if idx >= maxWindows {
		idx = maxWindows - 1
	}
	for len(ns.windows) <= idx {
		ns.windows = append(ns.windows, windowCell{})
	}
	return &ns.windows[idx]
}

// ---- server role ----

func (ns *nodeState) startServer() {
	for from, r := range ns.recv {
		if r != nil {
			ns.recvLoop(from, r)
		}
	}
}

func (ns *nodeState) recvLoop(from int, r *msg.Receiver) {
	var again func()
	again = func() {
		r.Recv(func(d []byte, err error) {
			if err != nil {
				return // receiver stopped
			}
			ns.onFrame(from, d)
			again()
		})
	}
	again()
}

// onFrame demultiplexes one delivered frame: requests enter the service
// pipeline, responses complete pending client requests, replication
// applies directly.
func (ns *nodeState) onFrame(from int, d []byte) {
	if len(d) < hdrBytes {
		ns.bump(cBad)
		return
	}
	op := d[0]
	id := binary.LittleEndian.Uint64(d[8:16])
	key := binary.LittleEndian.Uint64(d[16:24])
	switch op {
	case frRead, frWrite:
		req := ns.getReq()
		req.at = ns.eng.Now()
		req.key = key
		req.id = id
		req.from = int32(from)
		req.read = op == frRead
		ns.eng.ScheduleAfter(ns.svc.cfg.ServiceTime, ns, sim.EventArg{Ptr: req, I: evService << opShift})
	case frResp:
		ns.onResponse(from, d, id, key)
	case frReplicate:
		ns.applyWrite(key)
		ns.bump(cReplicas)
	default:
		ns.bump(cBad)
	}
}

// onService finishes one request's simulated work: apply (writes fold
// into the shard state and fan out to the other replicas), then post
// the response frame back. The serve.request profiler phase observes
// arrival-to-response-posted, so egress ring stalls show up in the
// budget.
func (ns *nodeState) onService(req *srvReq) {
	if req.read {
		resp := ns.getBuf(hdrBytes + ns.svc.cfg.ValueBytes)
		putHeader(resp, frResp, req.id, req.key)
		valueInto(resp[hdrBytes:], req.key)
		ns.respond(int(req.from), resp, req)
	} else {
		ns.applyWrite(req.key)
		ns.replicate(req.key)
		resp := ns.getBuf(hdrBytes)
		putHeader(resp, frResp, req.id, req.key)
		ns.respond(int(req.from), resp, req)
	}
}

func (ns *nodeState) respond(to int, resp []byte, req *srvReq) {
	ns.send[to].Send(resp, func(error) {
		ns.np.Observe(prof.NodeServe, ns.eng.Now()-req.at)
		ns.bump(cServed)
		ns.putBuf(resp)
		ns.putReq(req)
	})
}

// applyWrite folds one write into this node's shard state. The fold is
// addition of a key hash, so it is insensitive to arrival interleaving
// between peers but sensitive to every lost or duplicated apply — the
// cluster checksum the determinism gates compare.
func (ns *nodeState) applyWrite(key uint64) {
	ns.srvFold += mix64(key)
	ns.srvCount++
}

// replicate fans a just-applied write out to the shard's other
// replicas, fire-and-forget: on the write-only fabric replication is
// one more posted-store stream, and a crashed replica's copy simply
// master-aborts at its dead link.
func (ns *nodeState) replicate(key uint64) {
	for _, rep := range ns.svc.ring.replicas[ns.svc.ring.shardOf(key)] {
		if rep == ns.id {
			continue
		}
		b := ns.getBuf(hdrBytes + ns.svc.cfg.ValueBytes)
		putHeader(b, frReplicate, 0, key)
		valueInto(b[hdrBytes:], key)
		ns.send[rep].Send(b, func(error) { ns.putBuf(b) })
	}
}

// ---- client role ----

func (ns *nodeState) startClient() {
	ns.tokens = float64(ns.svc.cfg.BucketBurst)
	ns.lastFill = ns.eng.Now()
	if ns.arrivalsLeft > 0 {
		ns.scheduleArrival()
	}
}

func (ns *nodeState) scheduleArrival() {
	ns.eng.ScheduleAfter(ns.interarrival(), ns, sim.EventArg{I: evArrival << opShift})
}

// interarrival draws one exponential gap (clamped to 20x the mean so a
// tail draw cannot stall the generator).
func (ns *nodeState) interarrival() sim.Time {
	mean := float64(ns.svc.cfg.MeanInterarrival)
	d := -math.Log(1-ns.rng.Float64()) * mean
	if d < 1 {
		d = 1
	}
	if max := 20 * mean; d > max {
		d = max
	}
	return sim.Time(d)
}

// admit is the token-bucket admission controller: refill by elapsed
// virtual time, spend one token per accepted request.
func (ns *nodeState) admit(now sim.Time) bool {
	rate := ns.svc.cfg.BucketRate
	if rate < 0 {
		return true
	}
	ns.tokens += (now - ns.lastFill).Seconds() * rate
	ns.lastFill = now
	if burst := float64(ns.svc.cfg.BucketBurst); ns.tokens > burst {
		ns.tokens = burst
	}
	if ns.tokens < 1 {
		return false
	}
	ns.tokens--
	return true
}

func (ns *nodeState) onArrival() {
	now := ns.eng.Now()
	ns.bump(cArrivals)
	ns.win(now).offered++
	if ns.admit(now) {
		ns.bump(cAdmitted)
		ns.win(now).admitted++
		ns.launch(now)
	} else {
		ns.bump(cShed)
	}
	ns.arrivalsLeft--
	if ns.arrivalsLeft > 0 && !ns.halted {
		ns.scheduleArrival()
	}
}

// launch draws a key and operation, routes it, and either takes the
// node-local fast path or frames it onto the fabric with a timeout
// armed.
func (ns *nodeState) launch(now sim.Time) {
	cfg := &ns.svc.cfg
	key := ns.rng.Uint64() % cfg.Keyspace
	read := ns.rng.Float64() < cfg.ReadFraction
	if read {
		ns.bump(cReads)
	} else {
		ns.bump(cWrites)
	}
	reps := ns.svc.ring.replicas[ns.svc.ring.shardOf(key)]
	target := ns.route(reps, read)
	if target < 0 {
		ns.bump(cUnroutable)
		return
	}
	if ns.dead[reps[0]] {
		ns.bump(cFailovers)
	}
	ns.nextID++
	id := ns.nextID
	ns.pending[id] = pendingReq{start: now, key: key, target: int32(target), read: read}

	if target == ns.id {
		// Local fast path: the key's shard lives on this node, so the
		// "RPC" is a local memory access — no frames, no fabric.
		ns.bump(cLocal)
		ns.eng.ScheduleAfter(cfg.LocalDelay+cfg.ServiceTime, ns,
			sim.EventArg{I: evLocal<<opShift | int64(id&idMask)})
		return
	}
	op := byte(frRead)
	size := hdrBytes
	if !read {
		op = frWrite
		size += cfg.ValueBytes
	}
	b := ns.getBuf(size)
	putHeader(b, op, id, key)
	if !read {
		valueInto(b[hdrBytes:], key)
	}
	ns.outstanding[target]++
	ns.send[target].Send(b, func(error) { ns.putBuf(b) })
	ns.eng.ScheduleAfter(cfg.Timeout, ns, sim.EventArg{I: evTimeout<<opShift | int64(id&idMask)})
}

// route picks the target replica under the configured policy, filtered
// through this client's local alive view. -1 means no replica of the
// shard is believed alive.
func (ns *nodeState) route(reps []int, read bool) int {
	alive := ns.aliveBuf[:0]
	for _, r := range reps {
		if !ns.dead[r] {
			alive = append(alive, r)
		}
	}
	ns.aliveBuf = alive[:0]
	if len(alive) == 0 {
		return -1
	}
	if !read {
		// Writes always hit the first alive replica in placement order
		// so every client folds the same ordering assumptions.
		return alive[0]
	}
	switch ns.svc.cfg.Policy {
	case PolicyLeastLoaded:
		best := alive[0]
		for _, r := range alive[1:] {
			if ns.outstanding[r] < ns.outstanding[best] {
				best = r
			}
		}
		return best
	case PolicyAffinity:
		return alive[0]
	default: // PolicyRoundRobin
		ns.rrCtr++
		return alive[int(ns.rrCtr%uint64(len(alive)))]
	}
}

// onResponse completes one pending request. A response landing after
// its timeout already fired is counted late and dropped — the slot was
// already charged as a timeout.
func (ns *nodeState) onResponse(from int, d []byte, id, key uint64) {
	p, ok := ns.pending[id]
	if !ok {
		ns.bump(cLate)
		return
	}
	delete(ns.pending, id)
	ns.outstanding[from]--
	ns.strikes[from] = 0
	if p.read {
		if len(d) != hdrBytes+ns.svc.cfg.ValueBytes ||
			binary.LittleEndian.Uint64(d[hdrBytes:hdrBytes+8]) != valueStamp(key) {
			ns.bump(cBad)
		}
	}
	ns.complete(p)
}

// onLocal completes one local fast-path request, applying the write
// (and its replication fan-out) at completion time.
func (ns *nodeState) onLocal(id uint64) {
	p, ok := ns.pending[id]
	if !ok {
		return
	}
	delete(ns.pending, id)
	if !p.read {
		ns.applyWrite(p.key)
		ns.replicate(p.key)
	}
	ns.complete(p)
}

func (ns *nodeState) complete(p pendingReq) {
	now := ns.eng.Now()
	lat := now - p.start
	ns.lat.Observe(lat)
	ns.bump(cCompleted)
	w := ns.win(now)
	w.completed++
	if lat <= ns.svc.cfg.SLO {
		ns.bump(cInSLO)
		w.inSLO++
	}
}

// onTimeout charges one lost request against its server: after
// DeadAfter consecutive strikes the client marks the server dead and
// fails over. A client whose every remote server has died concludes its
// own node is cut off and halts its arrival process.
func (ns *nodeState) onTimeout(id uint64) {
	p, ok := ns.pending[id]
	if !ok {
		return // response beat the timer
	}
	delete(ns.pending, id)
	now := ns.eng.Now()
	ns.bump(cTimeouts)
	ns.win(now).timeouts++
	t := int(p.target)
	ns.outstanding[t]--
	ns.strikes[t]++
	if ns.strikes[t] >= ns.svc.cfg.DeadAfter && !ns.dead[t] {
		ns.dead[t] = true
		ns.bump(cDeadMarks)
		deadRemotes := 0
		for i, d := range ns.dead {
			if d && i != ns.id {
				deadRemotes++
			}
		}
		if deadRemotes == len(ns.dead)-1 {
			ns.halted = true
		}
	}
}

// OnEvent dispatches this node's timed events.
func (ns *nodeState) OnEvent(_ *sim.Engine, arg sim.EventArg) {
	switch arg.I >> opShift {
	case evArrival:
		ns.onArrival()
	case evTimeout:
		ns.onTimeout(uint64(arg.I & idMask))
	case evLocal:
		ns.onLocal(uint64(arg.I & idMask))
	case evService:
		ns.onService(arg.Ptr.(*srvReq))
	}
}

// ---- framing and pooling ----

func putHeader(b []byte, op byte, id, key uint64) {
	for i := 0; i < hdrBytes; i += 8 {
		binary.LittleEndian.PutUint64(b[i:], 0)
	}
	b[0] = op
	binary.LittleEndian.PutUint64(b[8:16], id)
	binary.LittleEndian.PutUint64(b[16:24], key)
}

// valueStamp is the first word of the deterministic value synthesized
// for a key — what read validation checks end to end.
func valueStamp(key uint64) uint64 { return mix64(key ^ 0xFACE) }

// valueInto fills a value payload deterministically from its key.
func valueInto(b []byte, key uint64) {
	binary.LittleEndian.PutUint64(b[:8], valueStamp(key))
	for i := 8; i < len(b); i++ {
		b[i] = byte(key) + byte(i)
	}
}

func (ns *nodeState) getBuf(n int) []byte {
	if len(ns.bufPool) > 0 {
		b := ns.bufPool[len(ns.bufPool)-1]
		ns.bufPool = ns.bufPool[:len(ns.bufPool)-1]
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n, hdrBytes+ns.svc.cfg.ValueBytes)
}

func (ns *nodeState) putBuf(b []byte) { ns.bufPool = append(ns.bufPool, b) }

func (ns *nodeState) getReq() *srvReq {
	if len(ns.reqPool) > 0 {
		r := ns.reqPool[len(ns.reqPool)-1]
		ns.reqPool = ns.reqPool[:len(ns.reqPool)-1]
		return r
	}
	return &srvReq{}
}

func (ns *nodeState) putReq(r *srvReq) { ns.reqPool = append(ns.reqPool, r) }

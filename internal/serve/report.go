package serve

import "repro/internal/prof"

// Window is one goodput accounting window of the run, merged across all
// client nodes. The fault campaigns read the crash story straight off
// this series: timeouts spike for one detection window, goodput dips,
// then recovers on the replicas.
type Window struct {
	Offered   uint64 `json:"offered"`
	Admitted  uint64 `json:"admitted"`
	Completed uint64 `json:"completed"`
	InSLO     uint64 `json:"in_slo"`
	Timeouts  uint64 `json:"timeouts"`
}

// Report is the full outcome of a serving run, merged across nodes in
// node-index order. Every field is derived from deterministic per-node
// state, so serial and parallel runs of the same deployment produce
// byte-identical reports.
type Report struct {
	Nodes    int    `json:"nodes"`
	Shards   int    `json:"shards"`
	ReplicaN int    `json:"replica_n"`
	Policy   string `json:"policy"`

	Requests   uint64 `json:"requests"`
	Admitted   uint64 `json:"admitted"`
	Shed       uint64 `json:"shed"`
	Completed  uint64 `json:"completed"`
	InSLO      uint64 `json:"in_slo"`
	Timeouts   uint64 `json:"timeouts"`
	Late       uint64 `json:"late_responses"`
	Unroutable uint64 `json:"unroutable"`
	Failovers  uint64 `json:"failovers"`
	DeadMarks  uint64 `json:"dead_marks"`

	Reads    uint64 `json:"reads"`
	Writes   uint64 `json:"writes"`
	Local    uint64 `json:"local_fast_path"`
	Served   uint64 `json:"served"`
	Replicas uint64 `json:"replicas_applied"`
	Bad      uint64 `json:"bad_frames"`

	P50PS      float64 `json:"p50_ps"`
	P99PS      float64 `json:"p99_ps"`
	P999PS     float64 `json:"p999_ps"`
	MeanPS     float64 `json:"mean_ps"`
	GoodputPct float64 `json:"goodput_pct"`

	Checksum uint64 `json:"checksum"`

	WindowPS int64    `json:"window_ps"`
	Windows  []Window `json:"windows,omitempty"`
}

// mergeHist folds snapshot b into a.
func mergeHist(a *prof.HistSnapshot, b prof.HistSnapshot) {
	a.Count += b.Count
	a.Sum += b.Sum
	for i := range a.Buckets {
		a.Buckets[i] += b.Buckets[i]
	}
}

// sum totals one counter across all nodes.
func (s *Service) sum(c int) uint64 {
	var t uint64
	for _, ns := range s.nodes {
		t += ns.ctr[c].Load()
	}
	return t
}

// Report merges every node's state into the run outcome. Call after the
// run has drained (it reads non-atomic window and fold state).
func (s *Service) Report() Report {
	r := Report{
		Nodes:    len(s.nodes),
		Shards:   s.cfg.Shards,
		ReplicaN: s.cfg.ReplicaN,
		Policy:   string(s.cfg.Policy),
		WindowPS: int64(s.cfg.Window),

		Requests:   s.sum(cArrivals),
		Admitted:   s.sum(cAdmitted),
		Shed:       s.sum(cShed),
		Completed:  s.sum(cCompleted),
		InSLO:      s.sum(cInSLO),
		Timeouts:   s.sum(cTimeouts),
		Late:       s.sum(cLate),
		Unroutable: s.sum(cUnroutable),
		Failovers:  s.sum(cFailovers),
		DeadMarks:  s.sum(cDeadMarks),
		Reads:      s.sum(cReads),
		Writes:     s.sum(cWrites),
		Local:      s.sum(cLocal),
		Served:     s.sum(cServed),
		Replicas:   s.sum(cReplicas),
		Bad:        s.sum(cBad),
	}

	var lat prof.HistSnapshot
	maxWin := 0
	for _, ns := range s.nodes {
		mergeHist(&lat, ns.lat.Snapshot())
		if len(ns.windows) > maxWin {
			maxWin = len(ns.windows)
		}
		// Order-independent within a node (the fold is addition), made
		// node-position-sensitive here so swapped shard states cannot
		// cancel out.
		r.Checksum ^= mix64(ns.srvFold + mix64(uint64(ns.id)+ns.srvCount))
	}
	r.P50PS = lat.Quantile(0.50)
	r.P99PS = lat.Quantile(0.99)
	r.P999PS = lat.Quantile(0.999)
	r.MeanPS = lat.Mean()
	if r.Requests > 0 {
		r.GoodputPct = 100 * float64(r.InSLO) / float64(r.Requests)
	}

	r.Windows = make([]Window, maxWin)
	for _, ns := range s.nodes {
		for i, w := range ns.windows {
			r.Windows[i].Offered += w.offered
			r.Windows[i].Admitted += w.admitted
			r.Windows[i].Completed += w.completed
			r.Windows[i].InSLO += w.inSLO
			r.Windows[i].Timeouts += w.timeouts
		}
	}
	return r
}

// Snapshot is a mid-run view of the service, cheap enough for the
// monitor's scrape path: counter loads and histogram snapshots only
// (all single-writer atomics), no window or fold state.
type Snapshot struct {
	Requests  uint64  `json:"requests"`
	Completed uint64  `json:"completed"`
	InSLO     uint64  `json:"in_slo"`
	Timeouts  uint64  `json:"timeouts"`
	Shed      uint64  `json:"shed"`
	DeadMarks uint64  `json:"dead_marks"`
	P50PS     float64 `json:"p50_ps"`
	P99PS     float64 `json:"p99_ps"`
	P999PS    float64 `json:"p999_ps"`
	Goodput   float64 `json:"goodput_pct"`
}

// Snapshot assembles the mid-run view. Safe to call from the monitor's
// HTTP goroutine while the simulation is running.
func (s *Service) Snapshot() Snapshot {
	var sn Snapshot
	var lat prof.HistSnapshot
	for _, ns := range s.nodes {
		sn.Requests += ns.ctr[cArrivals].Load()
		sn.Completed += ns.ctr[cCompleted].Load()
		sn.InSLO += ns.ctr[cInSLO].Load()
		sn.Timeouts += ns.ctr[cTimeouts].Load()
		sn.Shed += ns.ctr[cShed].Load()
		sn.DeadMarks += ns.ctr[cDeadMarks].Load()
		mergeHist(&lat, ns.lat.Snapshot())
	}
	sn.P50PS = lat.Quantile(0.50)
	sn.P99PS = lat.Quantile(0.99)
	sn.P999PS = lat.Quantile(0.999)
	if sn.Requests > 0 {
		sn.Goodput = 100 * float64(sn.InSLO) / float64(sn.Requests)
	}
	return sn
}

package serve

import "sort"

// mix64 is the splitmix64 finalizer: a cheap, well-mixed 64-bit hash
// used for key->shard mapping, ring-point placement and deterministic
// value synthesis. Pure function, so placement is identical on every
// run and on both engines.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// ringPoints is how many virtual points each node contributes to the
// hash ring. More points smooth the shard distribution; 32 keeps the
// max/min owned-shard ratio tight even at 4 nodes.
const ringPoints = 32

// hashRing is the deterministic shard->replica placement: every node
// hashes ringPoints virtual points onto a 64-bit circle, a shard hashes
// to a position, and its replicas are the first ReplicaN distinct nodes
// clockwise from there — pilosa's hasher generalized from mod-N to a
// consistent ring, so a future node join/leave would only move the
// shards adjacent to its points.
type hashRing struct {
	shards   int
	replicas [][]int // shard -> replica nodes, primary first
}

type ringPoint struct {
	pos  uint64
	node int
}

func newHashRing(nodes, shards, replicaN int, seed uint64) *hashRing {
	points := make([]ringPoint, 0, nodes*ringPoints)
	for n := 0; n < nodes; n++ {
		for v := 0; v < ringPoints; v++ {
			points = append(points, ringPoint{
				pos:  mix64(seed ^ mix64(uint64(n)<<20|uint64(v))),
				node: n,
			})
		}
	}
	// Position collisions are astronomically unlikely but must not make
	// placement depend on sort stability: break ties by node index.
	sort.Slice(points, func(i, j int) bool {
		if points[i].pos != points[j].pos {
			return points[i].pos < points[j].pos
		}
		return points[i].node < points[j].node
	})

	r := &hashRing{shards: shards, replicas: make([][]int, shards)}
	for sh := 0; sh < shards; sh++ {
		pos := mix64(seed + 0x5343 + uint64(sh))
		start := sort.Search(len(points), func(i int) bool { return points[i].pos >= pos })
		reps := make([]int, 0, replicaN)
		for i := 0; len(reps) < replicaN && i < len(points); i++ {
			cand := points[(start+i)%len(points)].node
			dup := false
			for _, got := range reps {
				if got == cand {
					dup = true
					break
				}
			}
			if !dup {
				reps = append(reps, cand)
			}
		}
		r.replicas[sh] = reps
	}
	return r
}

// shardOf maps a key to its shard.
func (r *hashRing) shardOf(key uint64) int {
	return int(mix64(key) % uint64(r.shards))
}

// Package serve turns a booted TCCluster into a replicated, shard-
// routed key-value/query service — the million-user serving scenario
// the ROADMAP's north star asks for, running entirely over the paper's
// write-only host-interface fabric.
//
// Every node plays both roles: a server owning a deterministic set of
// shards (consistent hashing over a virtual-point ring, ReplicaN
// replicas per shard), and a client population generating an open-loop
// request stream (deterministic exponential arrivals, token-bucket
// admission control). Requests and responses are framed over one msg
// channel per ordered node pair — remote posted stores into 16 KB
// rings, doorbell-parked receivers — and a key that hashes to a shard
// on the client's own node is served through a local fast path that
// never touches the fabric.
//
// Failure handling is timeout-driven, because the fabric gives nothing
// else: a posted store to a crashed node master-aborts silently, so the
// only crash signal a client gets is response silence. Each client arms
// a per-request timeout; after DeadAfter consecutive timeouts against
// one server it marks that server dead in its local view and routes the
// shard's traffic to the surviving replicas. A NodeCrash therefore
// shows up as a goodput dip exactly one detection window wide, then
// recovery on the replicas — the SLO-impact experiment BENCH_serve.json
// quantifies.
//
// Determinism: all mutable state is node-local and touched only by that
// node's engine events (arrivals, timeouts and routing on the client's
// engine; service and replication on the server's), so serial and
// WithParallel runs produce bit-identical reports. Counters and latency
// histograms use single-writer atomics (the prof.Hist contract), which
// also makes mid-run snapshots from the monitor's HTTP goroutine safe.
package serve

import (
	"fmt"

	"repro/internal/errs"
	"repro/internal/kernel"
	"repro/internal/msg"
	"repro/internal/sim"
)

// Policy selects how a client spreads read traffic over a shard's
// replicas. Writes always go to the first alive replica in placement
// order (the primary, or its successor after a crash).
type Policy string

const (
	// PolicyRoundRobin rotates reads across the shard's alive replicas.
	PolicyRoundRobin Policy = "round-robin"
	// PolicyLeastLoaded picks the alive replica with the fewest
	// requests outstanding from this client (lowest node id on ties).
	PolicyLeastLoaded Policy = "least-loaded"
	// PolicyAffinity always reads the first alive replica in placement
	// order: maximal cache affinity, failover only on death.
	PolicyAffinity Policy = "affinity"
)

func parsePolicy(p Policy) error {
	switch p {
	case PolicyRoundRobin, PolicyLeastLoaded, PolicyAffinity:
		return nil
	}
	return fmt.Errorf("serve: unknown routing policy %q: %w", p, errs.ErrBadConfig)
}

// Config shapes one serving deployment. Zero fields take the defaults
// documented per field (DefaultConfig spells them out).
type Config struct {
	// Shards is the number of key shards hashed over the ring
	// (default 64).
	Shards int
	// ReplicaN is how many nodes hold each shard (default 2, clamped
	// by New to the node count).
	ReplicaN int
	// Keyspace is the number of distinct keys clients draw from
	// (default 1<<20).
	Keyspace uint64
	// ValueBytes is the value payload size carried by writes and read
	// responses (default 128).
	ValueBytes int
	// ReadFraction is the probability a request is a read
	// (default 0.9).
	ReadFraction float64
	// RequestsPerNode is each node's open-loop arrival budget
	// (default 1000).
	RequestsPerNode int
	// MeanInterarrival is the mean of the exponential arrival process
	// per node (default 2 us).
	MeanInterarrival sim.Time
	// Policy is the read routing policy (default round-robin).
	Policy Policy
	// SLO is the latency bound a completion must meet to count toward
	// goodput (default 25 us).
	SLO sim.Time
	// Timeout declares a request lost — and counts a strike against
	// its server — when no response arrived (default 75 us).
	Timeout sim.Time
	// DeadAfter is how many consecutive timeouts against one server
	// make a client mark it dead (default 3).
	DeadAfter int
	// BucketBurst is the token-bucket depth of the per-node admission
	// controller (default 64).
	BucketBurst int
	// BucketRate is the bucket refill rate in requests per second of
	// virtual time (default 1e6). Negative disables admission control.
	BucketRate float64
	// Window is the goodput accounting window width (default 100 us).
	Window sim.Time
	// ServiceTime is the server-side work per request (default 150 ns).
	ServiceTime sim.Time
	// LocalDelay is the round-trip cost of the node-local fast path
	// (default 400 ns).
	LocalDelay sim.Time
	// RingBytes sizes each channel's receive ring (default 16 KB; the
	// paper's 4 KB rings stall senders under serving load).
	RingBytes uint64
	// Seed perturbs every client's arrival and key streams.
	Seed uint64
}

// DefaultConfig returns the serving defaults.
func DefaultConfig() Config {
	return Config{
		Shards:           64,
		ReplicaN:         2,
		Keyspace:         1 << 20,
		ValueBytes:       128,
		ReadFraction:     0.9,
		RequestsPerNode:  1000,
		MeanInterarrival: 2 * sim.Microsecond,
		Policy:           PolicyRoundRobin,
		SLO:              25 * sim.Microsecond,
		Timeout:          75 * sim.Microsecond,
		DeadAfter:        3,
		BucketBurst:      64,
		BucketRate:       1e6,
		Window:           100 * sim.Microsecond,
		ServiceTime:      150 * sim.Nanosecond,
		LocalDelay:       400 * sim.Nanosecond,
		RingBytes:        16384,
	}
}

// Validate fills zero fields with defaults and rejects a config that
// cannot run on an n-node deployment. New calls it; it is exported so
// spec layers can pre-check a lowered config without booting anything.
func (c *Config) Validate(nodes int) error { return c.validate(nodes) }

// validate fills zero fields with defaults and rejects what cannot run.
func (c *Config) validate(nodes int) error {
	d := DefaultConfig()
	if c.Shards == 0 {
		c.Shards = d.Shards
	}
	if c.ReplicaN == 0 {
		c.ReplicaN = d.ReplicaN
	}
	if c.Keyspace == 0 {
		c.Keyspace = d.Keyspace
	}
	if c.ValueBytes == 0 {
		c.ValueBytes = d.ValueBytes
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = d.ReadFraction
	}
	if c.RequestsPerNode == 0 {
		c.RequestsPerNode = d.RequestsPerNode
	}
	if c.MeanInterarrival == 0 {
		c.MeanInterarrival = d.MeanInterarrival
	}
	if c.Policy == "" {
		c.Policy = d.Policy
	}
	if c.SLO == 0 {
		c.SLO = d.SLO
	}
	if c.Timeout == 0 {
		c.Timeout = d.Timeout
	}
	if c.DeadAfter == 0 {
		c.DeadAfter = d.DeadAfter
	}
	if c.BucketBurst == 0 {
		c.BucketBurst = d.BucketBurst
	}
	if c.BucketRate == 0 {
		c.BucketRate = d.BucketRate
	}
	if c.Window == 0 {
		c.Window = d.Window
	}
	if c.ServiceTime == 0 {
		c.ServiceTime = d.ServiceTime
	}
	if c.LocalDelay == 0 {
		c.LocalDelay = d.LocalDelay
	}
	if c.RingBytes == 0 {
		c.RingBytes = d.RingBytes
	}
	if err := parsePolicy(c.Policy); err != nil {
		return err
	}
	if nodes < 2 {
		return fmt.Errorf("serve: need at least 2 nodes, got %d: %w", nodes, errs.ErrBadConfig)
	}
	if c.ReplicaN < 1 {
		return fmt.Errorf("serve: replica count %d < 1: %w", c.ReplicaN, errs.ErrBadConfig)
	}
	if c.ReplicaN > nodes {
		c.ReplicaN = nodes
	}
	if c.Shards < 1 {
		return fmt.Errorf("serve: shard count %d < 1: %w", c.Shards, errs.ErrBadConfig)
	}
	if c.ValueBytes < 8 || uint64(hdrBytes+c.ValueBytes) > c.RingBytes/4 {
		return fmt.Errorf("serve: value size %d outside 8..ring/4 (%d): %w",
			c.ValueBytes, c.RingBytes/4, errs.ErrBadConfig)
	}
	if c.ReadFraction < 0 || c.ReadFraction > 1 {
		return fmt.Errorf("serve: read fraction %v outside [0,1]: %w", c.ReadFraction, errs.ErrBadConfig)
	}
	if c.MeanInterarrival < 0 || c.SLO < 0 || c.Timeout < 0 || c.Window <= 0 {
		return fmt.Errorf("serve: negative timing parameter: %w", errs.ErrBadConfig)
	}
	if c.Timeout < c.SLO {
		return fmt.Errorf("serve: timeout %v below SLO %v: %w", c.Timeout, c.SLO, errs.ErrBadConfig)
	}
	return nil
}

// Service is one serving deployment over a booted cluster: the channel
// mesh, every node's server and client state, and the placement ring.
type Service struct {
	cfg   Config
	ring  *hashRing
	nodes []*nodeState
}

// New builds a service over every node of the cluster: a full mesh of
// msg channels (one per ordered pair, multiplexing requests, responses
// and replication), the consistent-hash placement, and per-node client
// and server state. Nothing runs until Start.
func New(os *kernel.OS, cfg Config) (*Service, error) {
	cl := os.Cluster()
	n := cl.N()
	if err := cfg.validate(n); err != nil {
		return nil, err
	}
	s := &Service{cfg: cfg, ring: newHashRing(n, cfg.Shards, cfg.ReplicaN, cfg.Seed)}

	par := msg.DefaultParams()
	par.RingBytes = cfg.RingBytes
	par.Doorbell = true

	s.nodes = make([]*nodeState, n)
	for i := 0; i < n; i++ {
		s.nodes[i] = newNodeState(s, cl, i, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			tx, rx, err := msg.Open(os, i, j, par)
			if err != nil {
				return nil, fmt.Errorf("serve: channel %d->%d: %w", i, j, err)
			}
			s.nodes[i].send[j] = tx
			s.nodes[j].recv[i] = rx
		}
	}
	return s, nil
}

// Config returns the resolved configuration (defaults filled in).
func (s *Service) Config() Config { return s.cfg }

// Placement returns shard sh's replica set in placement order (the
// first entry is the primary).
func (s *Service) Placement(sh int) []int { return s.ring.replicas[sh] }

// Start arms every server's receive loops and schedules every client's
// first arrival. The caller then drives the cluster (Run/RunFor).
func (s *Service) Start() {
	for _, ns := range s.nodes {
		ns.startServer()
	}
	for _, ns := range s.nodes {
		ns.startClient()
	}
}

// Stop halts every receive loop (parked doorbell receivers are failed
// immediately). Call after the run has drained, before a final Run to
// retire the stop events.
func (s *Service) Stop() {
	for _, ns := range s.nodes {
		for _, r := range ns.recv {
			if r != nil {
				r.Stop()
			}
		}
	}
}

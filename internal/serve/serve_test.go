package serve

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/fault"
	"repro/internal/kernel"
	"repro/internal/sim"
	"repro/internal/topology"
)

func rig(t *testing.T, nodes, workers int, actions ...fault.Action) (*core.Cluster, *kernel.OS) {
	t.Helper()
	topo, err := topology.Chain(nodes)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Parallel = workers
	c, err := core.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) > 0 {
		inj, err := fault.NewInjector(c, fault.NewCampaign(actions...))
		if err != nil {
			t.Fatal(err)
		}
		c.SetActionSource(inj)
	}
	return c, kernel.Install(c, kernel.Options{SMCDisabled: true})
}

func TestRingPlacement(t *testing.T) {
	r1 := newHashRing(8, 64, 3, 42)
	r2 := newHashRing(8, 64, 3, 42)
	if !reflect.DeepEqual(r1.replicas, r2.replicas) {
		t.Fatal("placement not deterministic")
	}
	owned := make([]int, 8)
	for sh, reps := range r1.replicas {
		if len(reps) != 3 {
			t.Fatalf("shard %d has %d replicas, want 3", sh, len(reps))
		}
		seen := map[int]bool{}
		for _, n := range reps {
			if n < 0 || n >= 8 || seen[n] {
				t.Fatalf("shard %d bad replica set %v", sh, reps)
			}
			seen[n] = true
		}
		owned[reps[0]]++
	}
	// Primary ownership must spread: no node should own more than half
	// of all shards with 32 virtual points each.
	for n, c := range owned {
		if c > 32 {
			t.Errorf("node %d owns %d/64 primaries — ring badly skewed", n, c)
		}
	}
	if newHashRing(8, 64, 3, 43).replicas[0][0] == r1.replicas[0][0] &&
		reflect.DeepEqual(newHashRing(8, 64, 3, 43).replicas, r1.replicas) {
		t.Error("different seeds produced identical placement")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		nodes int
		mod   func(*Config)
	}{
		{"one node", 1, func(c *Config) {}},
		{"bad policy", 4, func(c *Config) { c.Policy = "random" }},
		{"value too small", 4, func(c *Config) { c.ValueBytes = 4 }},
		{"value exceeds ring quarter", 4, func(c *Config) { c.ValueBytes = 8192 }},
		{"read fraction", 4, func(c *Config) { c.ReadFraction = 1.5 }},
		{"timeout below slo", 4, func(c *Config) {
			c.Timeout = 10 * sim.Microsecond
			c.SLO = 20 * sim.Microsecond
		}},
	}
	for _, tc := range cases {
		cfg := DefaultConfig()
		tc.mod(&cfg)
		if err := cfg.validate(tc.nodes); !errors.Is(err, errs.ErrBadConfig) {
			t.Errorf("%s: got %v, want ErrBadConfig", tc.name, err)
		}
	}
	cfg := Config{}
	if err := cfg.validate(4); err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if cfg.Shards != 64 || cfg.Policy != PolicyRoundRobin {
		t.Errorf("defaults not filled: %+v", cfg)
	}
	cfg = Config{ReplicaN: 100}
	if err := cfg.validate(4); err != nil || cfg.ReplicaN != 4 {
		t.Errorf("replicaN not clamped: %d %v", cfg.ReplicaN, err)
	}
}

// smallConfig keeps unit runs fast: 4 nodes x 300 requests.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.RequestsPerNode = 300
	cfg.Keyspace = 1 << 12
	cfg.ValueBytes = 64
	cfg.Seed = 7
	return cfg
}

func runServe(t *testing.T, nodes, workers int, cfg Config, actions ...fault.Action) (Report, uint64) {
	t.Helper()
	c, os := rig(t, nodes, workers, actions...)
	s, err := New(os, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	c.Run()
	s.Stop()
	c.Run()
	return s.Report(), c.EventsFired()
}

func TestServeEndToEnd(t *testing.T) {
	cfg := smallConfig()
	r, _ := runServe(t, 4, 0, cfg)
	if want := uint64(4 * 300); r.Requests != want {
		t.Fatalf("requests = %d, want %d", r.Requests, want)
	}
	if r.Admitted != r.Requests-r.Shed {
		t.Errorf("admitted %d != requests %d - shed %d", r.Admitted, r.Requests, r.Shed)
	}
	if r.Completed+r.Timeouts+r.Unroutable != r.Admitted {
		t.Errorf("accounting: completed %d + timeouts %d + unroutable %d != admitted %d",
			r.Completed, r.Timeouts, r.Unroutable, r.Admitted)
	}
	if r.Timeouts != 0 || r.Unroutable != 0 || r.Bad != 0 {
		t.Errorf("healthy run lost requests: %+v", r)
	}
	if r.Completed == 0 || r.InSLO == 0 || r.GoodputPct == 0 {
		t.Errorf("no goodput: %+v", r)
	}
	if r.P50PS <= 0 || r.P99PS < r.P50PS || r.P999PS < r.P99PS {
		t.Errorf("quantiles disordered: p50=%v p99=%v p999=%v", r.P50PS, r.P99PS, r.P999PS)
	}
	if r.Checksum == 0 {
		t.Error("zero checksum — no writes applied?")
	}
	if r.Writes > 0 && r.Replicas == 0 {
		t.Error("writes happened but nothing replicated")
	}
	if r.Local == 0 {
		t.Error("no request took the local fast path")
	}
	if len(r.Windows) == 0 {
		t.Error("no goodput windows recorded")
	}
}

func TestServePolicies(t *testing.T) {
	for _, p := range []Policy{PolicyRoundRobin, PolicyLeastLoaded, PolicyAffinity} {
		cfg := smallConfig()
		cfg.Policy = p
		r, _ := runServe(t, 4, 0, cfg)
		if r.Completed != r.Admitted {
			t.Errorf("%s: completed %d of %d admitted", p, r.Completed, r.Admitted)
		}
	}
}

func TestServeAdmissionSheds(t *testing.T) {
	cfg := smallConfig()
	// Arrivals at ~500k/s per node against a 100k/s bucket: most of the
	// stream must shed once the initial burst drains.
	cfg.BucketBurst = 4
	cfg.BucketRate = 100e3
	r, _ := runServe(t, 4, 0, cfg)
	if r.Shed == 0 {
		t.Fatalf("overdriven bucket shed nothing: %+v", r)
	}
	if r.Completed+r.Timeouts+r.Unroutable != r.Admitted {
		t.Errorf("accounting broken under shedding: %+v", r)
	}
}

func TestServeDeterminism(t *testing.T) {
	cfg := smallConfig()
	base, baseEvents := runServe(t, 4, 0, cfg)
	for _, workers := range []int{2, 4} {
		r, events := runServe(t, 4, workers, cfg)
		if events != baseEvents {
			t.Errorf("parallel=%d fired %d events, serial %d", workers, events, baseEvents)
		}
		if !reflect.DeepEqual(r, base) {
			t.Errorf("parallel=%d report diverged:\nserial:   %+v\nparallel: %+v", workers, base, r)
		}
	}
}

func TestServeCrashFailover(t *testing.T) {
	cfg := smallConfig()
	cfg.RequestsPerNode = 600
	crashAt := 400 * sim.Microsecond
	crash := fault.NodeCrash(3, crashAt)

	r, events := runServe(t, 4, 0, cfg, crash)
	if r.Timeouts == 0 {
		t.Fatal("crash produced no timeouts")
	}
	if r.DeadMarks == 0 {
		t.Fatal("no client marked the crashed node dead")
	}
	if r.Failovers == 0 {
		t.Fatal("no request failed over to a replica")
	}
	if r.Completed == 0 || r.InSLO == 0 {
		t.Fatalf("no goodput through the crash: %+v", r)
	}
	// Survivors must keep completing after detection: the tail windows
	// (after the crash) still carry completions.
	tail := r.Windows[len(r.Windows)-1]
	if tail.Completed == 0 && len(r.Windows) >= 2 {
		tail = r.Windows[len(r.Windows)-2]
	}
	if tail.Completed == 0 {
		t.Errorf("no completions in tail windows — failover did not recover: %+v", r.Windows)
	}

	for _, workers := range []int{2, 4} {
		rp, ep := runServe(t, 4, workers, cfg, crash)
		if ep != events {
			t.Errorf("parallel=%d fired %d events, serial %d", workers, ep, events)
		}
		if !reflect.DeepEqual(rp, r) {
			t.Errorf("parallel=%d crash report diverged:\nserial:   %+v\nparallel: %+v", workers, r, rp)
		}
	}
}

func TestServeSnapshot(t *testing.T) {
	cfg := smallConfig()
	c, os := rig(t, 4, 0)
	s, err := New(os, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	c.Run()
	s.Stop()
	c.Run()
	sn := s.Snapshot()
	r := s.Report()
	if sn.Requests != r.Requests || sn.Completed != r.Completed ||
		sn.P99PS != r.P99PS || sn.Goodput != r.GoodputPct {
		t.Errorf("snapshot disagrees with report: %+v vs %+v", sn, r)
	}
}

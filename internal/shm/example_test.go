package shm_test

import (
	"fmt"

	"repro/internal/shm"
)

// Example runs the live backend: the TCCluster ring protocol on real
// memory between real goroutines.
func Example() {
	s, r, err := shm.NewChannel(shm.DefaultParams())
	if err != nil {
		panic(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, s.MaxMessage())
		n, err := r.Recv(buf)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s\n", buf[:n])
	}()
	if err := s.Send([]byte("rings on real memory")); err != nil {
		panic(err)
	}
	<-done
	// Output: rings on real memory
}

// Package shm is the live execution backend of the TCCluster message
// protocol: real goroutines standing in for nodes, real memory standing
// in for the remote-MMIO window, and the exact ring discipline of the
// msg package — 64-bit stores only, a 4 KB ring per endpoint, polling
// receive, slot freeing by overwrite, and flow control via a consumed
// counter written back with a remote store.
//
// The simulation backend (internal/msg on internal/core) regenerates the
// paper's absolute nanosecond numbers deterministically; this backend
// exists so the repository's testing.B benchmarks exercise real
// concurrent code and real memory traffic.
//
// Memory-model mapping: the header word of each frame is written with a
// release store and polled with an acquire load, mirroring how the HT
// posted channel plus Sfence ordered the real thing; the consumed
// counter is likewise atomic, providing the reverse happens-before edge
// before a slot is rewritten.
package shm

import (
	"encoding/binary"
	"fmt"
	"runtime"
	"sync/atomic"

	"repro/internal/errs"
)

const (
	wordBytes  = 8
	lineWords  = 8 // 64-byte frame granularity, as on the wire
	wrapMark   = 0xFFFFFFFF
	headerWord = 1
)

// Params configure a channel.
type Params struct {
	RingBytes int // default 4096 (the paper's per-endpoint ring)
}

// DefaultParams matches the paper.
func DefaultParams() Params { return Params{RingBytes: 4096} }

// Stats counts channel activity.
type Stats struct {
	Messages uint64
	Bytes    uint64
	Wraps    uint64
	Stalls   uint64 // spins waiting for ring space
}

// counters is the atomic backing store for Stats: the owning endpoint
// goroutine mutates them while monitors (benchmark harnesses, live
// metric scrapes) call Stats() concurrently.
type counters struct {
	messages atomic.Uint64
	bytes    atomic.Uint64
	wraps    atomic.Uint64
	stalls   atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Messages: c.messages.Load(),
		Bytes:    c.bytes.Load(),
		Wraps:    c.wraps.Load(),
		Stalls:   c.stalls.Load(),
	}
}

// channel is the shared state: the ring lives "in the receiver's
// memory", the consumed counter "in the sender's".
type channel struct {
	ring     []uint64
	consumed atomic.Uint64
}

// Sender is the producing endpoint. Not safe for concurrent use by
// multiple goroutines (neither is a CPU core).
type Sender struct {
	ch    *channel
	sent  uint64
	seq   uint32
	stats counters
}

// Receiver is the consuming endpoint. Not safe for concurrent use.
type Receiver struct {
	ch        *channel
	recvd     uint64
	expectSeq uint32
	stats     counters
}

// NewChannel creates a connected sender/receiver pair.
func NewChannel(par Params) (*Sender, *Receiver, error) {
	if par.RingBytes == 0 {
		par.RingBytes = 4096
	}
	if par.RingBytes < 128 || par.RingBytes%64 != 0 {
		return nil, nil, fmt.Errorf("shm: ring size %d invalid: %w", par.RingBytes, errs.ErrBadConfig)
	}
	ch := &channel{ring: make([]uint64, par.RingBytes/wordBytes)}
	return &Sender{ch: ch}, &Receiver{ch: ch}, nil
}

// MaxMessage is the largest payload Send accepts.
func (s *Sender) MaxMessage() int { return len(s.ch.ring)*wordBytes - 2*64 }

// Stats returns a copy of the sender's counters. Safe to call from any
// goroutine while the sender is active.
func (s *Sender) Stats() Stats { return s.stats.snapshot() }

// Stats returns a copy of the receiver's counters. Safe to call from
// any goroutine while the receiver is active.
func (r *Receiver) Stats() Stats { return r.stats.snapshot() }

func frameWords(n int) uint64 {
	words := headerWord + (n+wordBytes-1)/wordBytes
	return uint64((words + lineWords - 1) / lineWords * lineWords)
}

func header(length, seq uint32) uint64 { return uint64(length) | uint64(seq)<<32 }

// Send writes payload into the ring, spinning while it is full. It
// returns an error only for invalid sizes.
func (s *Sender) Send(payload []byte) error {
	if len(payload) == 0 || len(payload) > s.MaxMessage() {
		return fmt.Errorf("shm: payload %d bytes outside 1..%d", len(payload), s.MaxMessage())
	}
	ringWords := uint64(len(s.ch.ring))
	fw := frameWords(len(payload))
	off := s.sent % ringWords
	need := fw
	if off+fw > ringWords {
		need += ringWords - off
	}
	for ringWords-(s.sent-s.ch.consumed.Load()) < need {
		s.stats.stalls.Add(1)
		runtime.Gosched()
	}
	if off+fw > ringWords {
		// Wrap marker: release-store, then account the padding.
		atomic.StoreUint64(&s.ch.ring[off], header(wrapMark, s.seq))
		s.sent += ringWords - off
		s.stats.wraps.Add(1)
		off = 0
	}
	// Payload words first (plain stores), header released last — the
	// same payload-fence-header discipline the HT posted channel needs.
	s.seq++
	w := off + headerWord
	rest := payload
	for len(rest) >= wordBytes {
		s.ch.ring[w] = binary.LittleEndian.Uint64(rest)
		w++
		rest = rest[wordBytes:]
	}
	if len(rest) > 0 {
		var tail [wordBytes]byte
		copy(tail[:], rest)
		s.ch.ring[w] = binary.LittleEndian.Uint64(tail[:])
	}
	atomic.StoreUint64(&s.ch.ring[off], header(uint32(len(payload)), s.seq))
	s.sent += fw
	s.stats.messages.Add(1)
	s.stats.bytes.Add(uint64(len(payload)))
	return nil
}

// Recv polls the ring until a message arrives and copies its payload
// into buf, returning the payload length. buf must be at least
// MaxMessage bytes to be safe for any sender.
func (r *Receiver) Recv(buf []byte) (int, error) {
	ringWords := uint64(len(r.ch.ring))
	for {
		off := r.recvd % ringWords
		h := atomic.LoadUint64(&r.ch.ring[off])
		length := uint32(h)
		seq := uint32(h >> 32)
		switch {
		case length == 0:
			runtime.Gosched()
		case length == wrapMark:
			atomic.StoreUint64(&r.ch.ring[off], 0)
			r.recvd += ringWords - off
			r.ch.consumed.Store(r.recvd)
			r.stats.wraps.Add(1)
		default:
			if int(length) > len(buf) {
				return 0, fmt.Errorf("shm: %d-byte message exceeds %d-byte buffer", length, len(buf))
			}
			r.expectSeq++
			if seq != r.expectSeq {
				return 0, fmt.Errorf("shm: sequence break: got %d, want %d", seq, r.expectSeq)
			}
			fw := frameWords(int(length))
			w := off + headerWord
			out := buf[:length]
			for len(out) >= wordBytes {
				binary.LittleEndian.PutUint64(out, r.ch.ring[w])
				w++
				out = out[wordBytes:]
			}
			if len(out) > 0 {
				var tail [wordBytes]byte
				binary.LittleEndian.PutUint64(tail[:], r.ch.ring[w])
				copy(out, tail[:])
			}
			// Free the slot by overwriting (§IV.A), header last-to-first
			// so a stale header can never expose stale payload.
			for i := off + fw - 1; i > off; i-- {
				r.ch.ring[i] = 0
			}
			atomic.StoreUint64(&r.ch.ring[off], 0)
			r.recvd += fw
			r.ch.consumed.Store(r.recvd)
			r.stats.messages.Add(1)
			r.stats.bytes.Add(uint64(length))
			return int(length), nil
		}
	}
}

package shm

import (
	"bytes"
	"sync"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	s, r, err := NewChannel(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("hello over the host interface")
	var got []byte
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, s.MaxMessage())
		n, err := r.Recv(buf)
		if err != nil {
			t.Errorf("recv: %v", err)
			return
		}
		got = append([]byte(nil), buf[:n]...)
	}()
	if err := s.Send(want); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if !bytes.Equal(got, want) {
		t.Errorf("got %q, want %q", got, want)
	}
}

func TestManyMessagesOrderedAndIntact(t *testing.T) {
	s, r, err := NewChannel(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, s.MaxMessage())
		for i := 0; i < n; i++ {
			ln, err := r.Recv(buf)
			if err != nil {
				t.Errorf("recv %d: %v", i, err)
				return
			}
			wantLen := 1 + (i*37)%700
			if ln != wantLen {
				t.Errorf("msg %d: len %d, want %d", i, ln, wantLen)
				return
			}
			for j := 0; j < ln; j++ {
				if buf[j] != byte(i+j) {
					t.Errorf("msg %d byte %d corrupted", i, j)
					return
				}
			}
		}
	}()
	for i := 0; i < n; i++ {
		payload := make([]byte, 1+(i*37)%700)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		if err := s.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	if s.Stats().Wraps == 0 {
		t.Error("ring never wrapped under 5000 messages")
	}
	if s.Stats().Messages != n || r.Stats().Messages != n {
		t.Errorf("message counts: sent=%d recvd=%d", s.Stats().Messages, r.Stats().Messages)
	}
}

func TestBackpressureStallsSender(t *testing.T) {
	s, r, err := NewChannel(Params{RingBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		// 100 x 64B frames >> 256B ring: sender must stall until the
		// receiver drains.
		for i := 0; i < 100; i++ {
			if err := s.Send([]byte{1, 2, 3, 4, 5, 6, 7, 8}); err != nil {
				t.Errorf("send: %v", err)
			}
		}
	}()
	buf := make([]byte, 64)
	for i := 0; i < 100; i++ {
		if _, err := r.Recv(buf); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if s.Stats().Stalls == 0 {
		t.Error("sender never stalled on a 256B ring")
	}
}

func TestValidation(t *testing.T) {
	if _, _, err := NewChannel(Params{RingBytes: 100}); err == nil {
		t.Error("unaligned ring accepted")
	}
	s, r, _ := NewChannel(DefaultParams())
	if err := s.Send(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := s.Send(make([]byte, s.MaxMessage()+1)); err == nil {
		t.Error("oversized payload accepted")
	}
	// Undersized receive buffer.
	go func() { _ = s.Send(make([]byte, 100)) }()
	if _, err := r.Recv(make([]byte, 10)); err == nil {
		t.Error("undersized buffer accepted")
	}
}

func TestFrameWords(t *testing.T) {
	cases := map[int]uint64{1: 8, 55: 8, 56: 8, 57: 16, 120: 16, 121: 24}
	for n, want := range cases {
		if got := frameWords(n); got != want {
			t.Errorf("frameWords(%d) = %d, want %d", n, got, want)
		}
	}
}

// Property: any sequence of payload sizes arrives intact and in order.
func TestTransferProperty(t *testing.T) {
	f := func(sizes []uint16, seed byte) bool {
		if len(sizes) > 200 {
			sizes = sizes[:200]
		}
		s, r, err := NewChannel(DefaultParams())
		if err != nil {
			return false
		}
		ok := true
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := make([]byte, s.MaxMessage())
			for i, raw := range sizes {
				want := 1 + int(raw)%1500
				n, err := r.Recv(buf)
				if err != nil || n != want {
					ok = false
					return
				}
				for j := 0; j < n; j++ {
					if buf[j] != seed+byte(i*3+j) {
						ok = false
						return
					}
				}
			}
		}()
		for i, raw := range sizes {
			payload := make([]byte, 1+int(raw)%1500)
			for j := range payload {
				payload[j] = seed + byte(i*3+j)
			}
			if err := s.Send(payload); err != nil {
				return false
			}
		}
		wg.Wait()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Stats must be safe to call from a monitoring goroutine while both
// endpoints are live (run with -race).
func TestStatsSafeUnderConcurrentReaders(t *testing.T) {
	s, r, err := NewChannel(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				_ = s.Stats()
				_ = r.Stats()
			}
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, s.MaxMessage())
		for i := 0; i < n; i++ {
			if _, err := r.Recv(buf); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	payload := make([]byte, 96)
	for i := 0; i < n; i++ {
		if err := s.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if got := s.Stats().Messages; got != n {
		t.Fatalf("sender Messages = %d, want %d", got, n)
	}
	if got := r.Stats().Messages; got != n {
		t.Fatalf("receiver Messages = %d, want %d", got, n)
	}
}

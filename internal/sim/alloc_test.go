package sim

import "testing"

// ticker reschedules itself forever; the canonical steady-state
// workload: every Step frees one arena slot and Schedule immediately
// reuses it.
type ticker struct {
	period Time
}

func (tk *ticker) OnEvent(e *Engine, arg EventArg) {
	e.ScheduleAfter(tk.period, tk, arg)
}

// startTickers launches k self-rescheduling tickers with staggered
// periods and steps the engine until arena, buckets and far heap have
// reached their steady-state capacity.
func startTickers(e *Engine, k int) {
	for i := 0; i < k; i++ {
		tk := &ticker{period: Time(300+i*37) * Picosecond}
		e.Schedule(Time(i)*Picosecond, tk, EventArg{I: int64(i)})
	}
	for i := 0; i < 50_000; i++ {
		e.Step()
	}
}

// Satellite regression: the Schedule+Step cycle must not allocate in
// steady state — this is the contract the ladder queue exists for.
func TestScheduleStepZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	e := NewEngine()
	startTickers(e, 64)
	allocs := testing.AllocsPerRun(500, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocated %.1f allocs/op, want 0", allocs)
	}
}

// The closure-based At entry point must stay as cheap as Schedule: a
// non-capturing func converts to Handler without allocating.
func TestAtStepZeroAllocsSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 4096; i++ {
		e.At(e.Now()+Time(i%1700)*Picosecond, fn)
		e.Step()
	}
	allocs := testing.AllocsPerRun(500, func() {
		e.At(e.Now()+700*Picosecond, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state At+Step allocated %.1f allocs/op, want 0", allocs)
	}
}

// The legacy queue is expected to allocate (interface{} boxing on every
// push/pop); this test documents the contrast rather than pinning an
// exact count.
func TestLegacyQueueAllocatesPerOp(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	e := NewLegacyEngine()
	startTickers(e, 64)
	allocs := testing.AllocsPerRun(500, func() {
		e.Step()
	})
	if allocs == 0 {
		t.Fatal("legacy heap reported 0 allocs/op; baseline comparison is meaningless")
	}
}

func benchSelfClock(b *testing.B, e *Engine) {
	b.ReportAllocs()
	startTickers(e, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkLadderSelfClock(b *testing.B) { benchSelfClock(b, NewEngine()) }
func BenchmarkLegacySelfClock(b *testing.B) { benchSelfClock(b, NewLegacyEngine()) }

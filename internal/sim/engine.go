// Package sim provides a deterministic discrete-event simulation engine
// with picosecond-resolution virtual time.
//
// The engine is the substrate for every timed model in this repository:
// HyperTransport links, northbridge pipelines, memory controllers and the
// baseline NIC models all schedule their work as events on a shared
// Engine. Determinism is guaranteed by a strict (time, sequence) ordering
// of events: two events scheduled for the same virtual instant fire in
// the order they were scheduled.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in virtual time, measured in picoseconds. Picoseconds
// give headroom to represent sub-nanosecond link serialization quanta
// (one 16-bit HT transfer at 5.2 GT/s lasts ~192 ps) without rounding.
type Time int64

// Duration units for constructing Time values.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanos returns t expressed in nanoseconds as a float.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// Micros returns t expressed in microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t expressed in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanos())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// FromNanos converts a nanosecond count to a Time, rounding to the
// nearest picosecond.
func FromNanos(ns float64) Time { return Time(ns*1000 + 0.5) }

// event is a scheduled callback. seq breaks ties between events at the
// same virtual instant so execution order is deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Probe observes the engine's virtual clock. An armed probe is invoked
// the first time the clock advances to or past its wake time and
// returns the next wake time (a time not after now disarms it). The
// engine holds the wake time itself, so between wake-ups the hot path
// pays one integer compare per executed event, never a dynamic call.
type Probe func(now Time) Time

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use; the whole point is a single
// deterministic timeline.
type Engine struct {
	now     Time
	heap    eventHeap
	seq     uint64
	fired   uint64
	halted  bool
	probe   Probe
	probeAt Time // next probe wake time, meaningful while probe != nil
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting to execute.
func (e *Engine) Pending() int { return len(e.heap) }

// At schedules fn to run at absolute virtual time t. Scheduling into the
// past panics: a causal model must never rewind the clock.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.heap, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d picoseconds after the current time.
func (e *Engine) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.At(e.now+d, fn)
}

// SetProbe arms the clock observer to fire once the clock reaches wake
// (nil disarms). The observability layer uses it to sample virtual-time
// windows; the hot path pays one nil check per executed event when no
// probe is armed and one integer compare when one is.
func (e *Engine) SetProbe(p Probe, wake Time) {
	e.probe = p
	e.probeAt = wake
}

// Step executes the next pending event, advancing the clock to its
// timestamp. It reports whether an event was executed.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	ev := heap.Pop(&e.heap).(event)
	if e.probe != nil && ev.at >= e.probeAt {
		if next := e.probe(ev.at); next > ev.at {
			e.probeAt = next
		} else {
			e.probe = nil
		}
	}
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run executes events until none remain or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events beyond the deadline stay pending.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted && len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if !e.halted && e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d picoseconds of virtual time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// Halt stops Run/RunUntil after the currently executing event returns.
// It is intended to be called from inside an event callback.
func (e *Engine) Halt() { e.halted = true }

// Package sim provides a deterministic discrete-event simulation engine
// with picosecond-resolution virtual time.
//
// The engine is the substrate for every timed model in this repository:
// HyperTransport links, northbridge pipelines, memory controllers and the
// baseline NIC models all schedule their work as events on a shared
// Engine. Determinism is guaranteed by a strict (time, sequence) ordering
// of events: two events scheduled for the same virtual instant fire in
// the order they were scheduled.
//
// Events are scheduled through a typed API: a Handler receives an
// EventArg carrying one pointer and one integer, which covers every model
// in the tree without per-event closure allocations. The closure-based
// At/After entry points remain as thin adapters (a func value converts to
// the Handler interface without allocating). Pending events live in an
// arena-backed ladder queue (see queue.go); NewLegacyEngine selects the
// seed container/heap queue instead, kept as a determinism oracle and
// benchmark baseline.
package sim

import (
	"fmt"
)

// Time is a point in virtual time, measured in picoseconds. Picoseconds
// give headroom to represent sub-nanosecond link serialization quanta
// (one 16-bit HT transfer at 5.2 GT/s lasts ~192 ps) without rounding.
type Time int64

// Duration units for constructing Time values.
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000 * Picosecond
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Nanos returns t expressed in nanoseconds as a float.
func (t Time) Nanos() float64 { return float64(t) / float64(Nanosecond) }

// Micros returns t expressed in microseconds as a float.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Seconds returns t expressed in seconds as a float.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

func (t Time) String() string {
	switch {
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", t.Nanos())
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// FromNanos converts a nanosecond count to a Time, rounding to the
// nearest picosecond.
func FromNanos(ns float64) Time { return Time(ns*1000 + 0.5) }

// EventArg is the payload delivered to a Handler when its event fires.
// Ptr carries a pointer-shaped value (storing a pointer in an interface
// does not allocate); I carries a scalar, typically an opcode or an
// opcode packed with small operands. Both may be zero.
type EventArg struct {
	Ptr any
	I   int64
}

// Handler receives events. Implementations dispatch on arg (commonly an
// opcode in arg.I plus a record pointer in arg.Ptr), which lets one
// long-lived object service many event kinds without any per-event
// closure.
type Handler interface {
	OnEvent(e *Engine, arg EventArg)
}

// funcHandler adapts a plain func() to Handler. A func value is
// pointer-shaped, so the conversion to Handler does not allocate — At
// and After stay as cheap as Schedule.
type funcHandler func()

func (f funcHandler) OnEvent(*Engine, EventArg) { f() }

// Probe observes the engine's virtual clock. An armed probe is invoked
// at its exact wake time: before the engine executes any event at or
// past the wake, it parks the clock on the wake time and calls the
// probe with now == wake. The probe returns the next wake time (a time
// not after now disarms it). When a quiescence fast-forward jumps the
// clock across several wake times, each one fires in order at its own
// instant — a monitor sampling every 10µs across an 8ms idle gap sees
// every boundary, stamped exactly. The engine holds the wake time
// itself, so between wake-ups the hot path pays one nil check per
// executed event, never a dynamic call.
type Probe func(now Time) Time

// Engine is a discrete-event simulator. The zero value is ready to use.
// Engine is not safe for concurrent use; the whole point is a single
// deterministic timeline.
type Engine struct {
	now     Time
	seq     uint64
	fired   uint64
	halted  bool
	probe   Probe
	probeAt Time // next probe wake time, meaningful while probe != nil

	// Lineage priority state (see queue.go's ordering contract). While a
	// handler runs, firing is true and curPri carries the executing
	// event's priority, which every event it schedules inherits. Outside
	// handlers, Schedule draws a fresh root priority from rootPri — by
	// default the engine's own counter, but partition engines of one
	// parallel cluster share a single counter (SharePriorityCounter) so
	// root draws land in driver-call order exactly as a serial run's.
	firing  bool
	curPri  uint64
	ownRoot uint64
	rootPri *uint64

	// Parallel-window state (see parallel.go). winCap is the dynamic
	// bound runEvents honors: it starts at the window deadline and
	// shrinks when this partition posts cross-partition mail, capping
	// how far the partition may run ahead of its own round-trip
	// consequences. postLook2 is twice the executor's lookahead — the
	// minimum virtual-time cost of any causal chain that leaves this
	// partition and returns to it. Both are zero outside parallel runs.
	winCap    Time
	postLook2 Time

	// mailDirty lists the mailboxes this engine posted to since the
	// last barrier. The coordinator flips exactly these at the next
	// barrier instead of scanning the full partition-pair matrix; the
	// slice is truncated (capacity kept) after every flip. Only the
	// producer partition's goroutine appends, only the coordinator
	// clears, and the two are ordered by the barrier handoff.
	mailDirty []*Mailbox

	q      ladder       // default queue: arena-backed ladder
	legacy *legacyQueue // non-nil selects the seed container/heap queue
}

// NewEngine returns an empty engine at time zero.
func NewEngine() *Engine { return &Engine{} }

// NewLegacyEngine returns an engine backed by the seed-era
// container/heap event queue. Both queues implement the same strict
// (time, seq) contract; the legacy queue survives as the baseline the
// determinism suite and tccbench -bench engine compare against.
func NewLegacyEngine() *Engine { return &Engine{legacy: &legacyQueue{}} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting to execute.
func (e *Engine) Pending() int {
	if e.legacy != nil {
		return e.legacy.len()
	}
	return e.q.n
}

// Schedule queues h to receive arg at absolute virtual time t.
// Scheduling into the past panics: a causal model must never rewind the
// clock.
func (e *Engine) Schedule(t Time, h Handler, arg EventArg) {
	e.scheduleKeyed(t, e.now, e.eventPri(), h, arg)
}

// scheduleKeyed queues h with an explicit schedule stamp and lineage
// priority. Local scheduling stamps with now and the current lineage;
// the parallel executor's mailboxes carry both from the sender
// partition, which reproduces the same-timestamp arbitration order a
// serial run would have produced (see queue.go's ordering contract).
func (e *Engine) scheduleKeyed(t, sat Time, pri uint64, h Handler, arg EventArg) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", t, e.now))
	}
	e.seq++
	if e.legacy != nil {
		e.legacy.push(t, sat, pri, e.seq, h, arg)
		return
	}
	e.q.insert(t, sat, pri, e.seq, e.q.alloc(h, arg))
}

// eventPri returns the lineage priority for an event scheduled now: the
// executing event's priority inside a handler, a fresh root draw outside
// one.
func (e *Engine) eventPri() uint64 {
	if e.firing {
		return e.curPri
	}
	if e.rootPri == nil {
		e.rootPri = &e.ownRoot
	}
	*e.rootPri++
	return *e.rootPri
}

// SharePriorityCounter makes e draw root priorities from with's counter.
// The parallel executor calls it on every partition engine so events
// scheduled from driver context (workload setup between runs) are
// prioritized in global call order, exactly as a single serial engine
// would have numbered them. Sharing is only safe while all scheduling
// outside handlers happens from one goroutine, which the coordinator
// guarantees.
func (e *Engine) SharePriorityCounter(with *Engine) {
	if with.rootPri == nil {
		with.rootPri = &with.ownRoot
	}
	e.rootPri = with.rootPri
}

// ScheduleAfter queues h to receive arg d picoseconds after now.
func (e *Engine) ScheduleAfter(d Time, h Handler, arg EventArg) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now+d, h, arg)
}

// At schedules fn to run at absolute virtual time t.
func (e *Engine) At(t Time, fn func()) {
	e.Schedule(t, funcHandler(fn), EventArg{})
}

// After schedules fn to run d picoseconds after the current time.
func (e *Engine) After(d Time, fn func()) {
	e.ScheduleAfter(d, funcHandler(fn), EventArg{})
}

// SetProbe arms the clock observer to fire once the clock reaches wake
// (nil disarms). The observability layer uses it to sample virtual-time
// windows; the hot path pays one nil check per executed event when no
// probe is armed and one integer compare when one is.
func (e *Engine) SetProbe(p Probe, wake Time) {
	e.probe = p
	e.probeAt = wake
}

// fireProbe invokes the armed probe at its exact wake time: the clock
// is parked on the wake (never rewound) before the call, so the probe
// observes Now() == wake and may schedule events, which land at or
// after the wake like any other scheduling.
func (e *Engine) fireProbe() {
	wake := e.probeAt
	if wake < e.now {
		wake = e.now
	}
	e.now = wake
	if next := e.probe(wake); next > wake {
		e.probeAt = next
	} else {
		e.probe = nil
	}
}

// Step executes the next pending event, advancing the clock to its
// timestamp. Armed probe wakes at or before that timestamp fire first,
// each at its exact time. It reports whether an event was executed.
func (e *Engine) Step() bool {
	for e.probe != nil {
		t, ok := e.nextTime()
		if !ok || t < e.probeAt {
			break
		}
		e.fireProbe() // may schedule new events: re-peek each round
	}
	var (
		at  Time
		pri uint64
		h   Handler
		arg EventArg
	)
	if e.legacy != nil {
		ev, ok := e.legacy.pop()
		if !ok {
			return false
		}
		at, pri, h, arg = ev.at, ev.pri, ev.h, ev.arg
	} else {
		en, ok := e.q.pop()
		if !ok {
			return false
		}
		at, pri = en.at, en.pri
		// Release before dispatch so a handler that reschedules itself
		// reuses the slot it just vacated.
		h, arg = e.q.release(en.ref)
	}
	e.now = at
	e.fired++
	e.curPri, e.firing = pri, true
	h.OnEvent(e, arg)
	e.firing = false
	return true
}

// nextTime reports the timestamp of the earliest pending event.
func (e *Engine) nextTime() (Time, bool) {
	if e.legacy != nil {
		return e.legacy.peek()
	}
	return e.q.peek()
}

// Run executes events until none remain or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline. Events beyond the deadline stay pending. The
// final jump to the deadline is a quiescence fast-forward: it fires
// every armed probe wake the jump crosses, each at its exact virtual
// time, instead of silently skipping them — and a probe that schedules
// new events at or before the deadline gets them executed too.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted {
		if t, ok := e.nextTime(); ok && t <= deadline {
			e.Step()
			continue
		}
		if e.probe != nil && e.probeAt <= deadline {
			e.fireProbe()
			continue
		}
		break
	}
	if !e.halted && e.now < deadline {
		e.now = deadline
	}
}

// RunFor executes events for d picoseconds of virtual time from now.
func (e *Engine) RunFor(d Time) { e.RunUntil(e.now + d) }

// runEvents executes events with timestamps <= deadline but, unlike
// RunUntil, leaves the clock at the last fired event instead of jumping
// to the deadline. The parallel executor uses it so a window bound
// (which is a synchronization artifact, not a workload time) never
// shows up in the final virtual time. The deadline is dynamic: posting
// cross-partition mail shrinks it (via winCap) to the post time plus
// twice the lookahead, the earliest instant a consequence of that mail
// could return to this partition.
func (e *Engine) runEvents(deadline Time) {
	e.halted = false
	e.winCap = deadline
	for !e.halted {
		t, ok := e.nextTime()
		if !ok || t > e.winCap {
			return
		}
		e.Step()
	}
}

// Halt stops Run/RunUntil after the currently executing event returns.
// It is intended to be called from inside an event callback.
func (e *Engine) Halt() { e.halted = true }

// AlignTo advances the clock to t without executing anything: a no-op
// when the clock is already at or past t, a panic when a pending event
// would be skipped by the jump. Fault campaigns use it to park every
// engine exactly at an action's timestamp — after all events before it,
// before any event at or after it — so a fault applies at the same
// instant under the serial and parallel executors. Unlike RunUntil the
// jump is a synchronization artifact: armed probe wakes the jump
// crosses still fire at their exact times, but no events run (a probe
// that schedules an event before t defeats the alignment and panics).
func (e *Engine) AlignTo(t Time) {
	if t <= e.now {
		return
	}
	for {
		if next, ok := e.nextTime(); ok && next < t {
			panic(fmt.Sprintf("sim: AlignTo(%v) would skip an event pending at %v", t, next))
		}
		if e.probe == nil || e.probeAt > t {
			break
		}
		e.fireProbe()
	}
	if e.now < t {
		e.now = t
	}
}

// WarpTo jumps an idle engine's clock forward to t without executing
// anything. The parallel executor uses it to start freshly created
// partition engines at the boot-end time of the engine that booted the
// cluster. Warping an engine with pending events would silently skip
// them, so that panics, as does warping backwards.
func (e *Engine) WarpTo(t Time) {
	if e.Pending() != 0 {
		panic(fmt.Sprintf("sim: WarpTo(%v) with %d events pending", t, e.Pending()))
	}
	if t < e.now {
		panic(fmt.Sprintf("sim: WarpTo(%v) before now %v", t, e.now))
	}
	e.now = t
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("Now() = %v, want 30ns", e.Now())
	}
}

func TestEngineTieBreaksBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Nanosecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestEngineAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100*Nanosecond, func() {
		e.After(50*Nanosecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 150*Nanosecond {
		t.Fatalf("After fired at %v, want 150ns", at)
	}
}

func TestEngineSchedulingIntoPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	e.Run()
}

func TestEngineRunUntilLeavesLaterEventsPending(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10*Nanosecond, func() { fired++ })
	e.At(20*Nanosecond, func() { fired++ })
	e.At(30*Nanosecond, func() { fired++ })
	e.RunUntil(20 * Nanosecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20*Nanosecond {
		t.Fatalf("Now() = %v, want 20ns", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntilAdvancesClockToDeadline(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42 * Nanosecond)
	if e.Now() != 42*Nanosecond {
		t.Fatalf("Now() = %v, want 42ns", e.Now())
	}
}

func TestEngineHaltStopsRun(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10*Nanosecond, func() { fired++; e.Halt() })
	e.At(20*Nanosecond, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Halt should stop the run)", fired)
	}
	e.Run() // resumes
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

func TestEngineCascadedEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 1000 {
			e.After(1*Nanosecond, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
	if e.Now() != 999*Nanosecond {
		t.Fatalf("Now() = %v, want 999ns", e.Now())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{227 * Nanosecond, "227ns"},
		{1400 * Nanosecond, "1.4us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromNanos(t *testing.T) {
	if got := FromNanos(227); got != 227*Nanosecond {
		t.Errorf("FromNanos(227) = %v", got)
	}
	if got := FromNanos(0.5); got != 500*Picosecond {
		t.Errorf("FromNanos(0.5) = %v", got)
	}
}

func TestServerFIFO(t *testing.T) {
	var s Server
	start, done := s.Schedule(0, 10*Nanosecond)
	if start != 0 || done != 10*Nanosecond {
		t.Fatalf("first job start=%v done=%v", start, done)
	}
	// Arrives while busy: queues behind the first job.
	start, done = s.Schedule(5*Nanosecond, 10*Nanosecond)
	if start != 10*Nanosecond || done != 20*Nanosecond {
		t.Fatalf("second job start=%v done=%v", start, done)
	}
	// Arrives after idle: starts immediately.
	start, done = s.Schedule(100*Nanosecond, 5*Nanosecond)
	if start != 100*Nanosecond || done != 105*Nanosecond {
		t.Fatalf("third job start=%v done=%v", start, done)
	}
	if s.Jobs() != 3 {
		t.Fatalf("Jobs() = %d, want 3", s.Jobs())
	}
	if s.BusyTime() != 25*Nanosecond {
		t.Fatalf("BusyTime() = %v, want 25ns", s.BusyTime())
	}
}

func TestServerUtilization(t *testing.T) {
	var s Server
	s.Schedule(0, 50*Nanosecond)
	if u := s.Utilization(100 * Nanosecond); u != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
	if u := s.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", u)
	}
}

// Property: for any job sequence, start >= arrival, done = start + service,
// and service intervals never overlap.
func TestServerNoOverlapProperty(t *testing.T) {
	f := func(arrivals []uint16, services []uint8) bool {
		var s Server
		n := len(arrivals)
		if len(services) < n {
			n = len(services)
		}
		var prevDone Time
		var arr Time
		for i := 0; i < n; i++ {
			arr += Time(arrivals[i]) // monotone non-decreasing arrivals
			svc := Time(services[i])
			start, done := s.Schedule(arr, svc)
			if start < arr {
				return false
			}
			if done != start+svc {
				return false
			}
			if start < prevDone {
				return false // overlap
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of range", f)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandJitterBounds(t *testing.T) {
	r := NewRand(13)
	base := 100 * Nanosecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.1)
		if j < 90*Nanosecond || j > 110*Nanosecond {
			t.Fatalf("Jitter out of bounds: %v", j)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("zero-fraction jitter must be identity")
	}
}

// Property: any batch of randomly-timed events executes in
// non-decreasing time order, with scheduling order breaking ties.
func TestEventOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		type fired struct {
			at  Time
			seq int
		}
		var log []fired
		for i, d := range delays {
			i, at := i, Time(d)*Nanosecond
			e.At(at, func() { log = append(log, fired{at: at, seq: i}) })
		}
		e.Run()
		if len(log) != len(delays) {
			return false
		}
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				return false
			}
			if log[i].at == log[i-1].at && log[i].seq < log[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineProbeWakeSemantics(t *testing.T) {
	e := NewEngine()
	var wakes []Time
	// Arm at 100ns, re-arm every 100ns: events at 40, 80 must not wake
	// the probe; 120 crosses the first boundary; 130 is inside the next
	// window; 250 crosses again.
	e.SetProbe(func(now Time) Time {
		wakes = append(wakes, now)
		next := Time(100 * Nanosecond)
		for next <= now {
			next += 100 * Nanosecond
		}
		return next
	}, 100*Nanosecond)
	for _, at := range []Time{40, 80, 120, 130, 250} {
		e.At(at*Nanosecond, func() {})
	}
	e.Run()
	want := []Time{120 * Nanosecond, 250 * Nanosecond}
	if len(wakes) != len(want) || wakes[0] != want[0] || wakes[1] != want[1] {
		t.Fatalf("probe wakes = %v, want %v", wakes, want)
	}
}

func TestEngineProbeDisarmsOnStaleWake(t *testing.T) {
	e := NewEngine()
	calls := 0
	e.SetProbe(func(now Time) Time {
		calls++
		return 0 // not after now: disarm
	}, 10*Nanosecond)
	e.At(20*Nanosecond, func() {})
	e.At(30*Nanosecond, func() {})
	e.Run()
	if calls != 1 {
		t.Fatalf("disarmed probe fired %d times, want 1", calls)
	}
}

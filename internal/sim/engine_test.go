package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdersEventsByTime(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30*Nanosecond, func() { got = append(got, 3) })
	e.At(10*Nanosecond, func() { got = append(got, 1) })
	e.At(20*Nanosecond, func() { got = append(got, 2) })
	e.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("execution order %v, want %v", got, want)
		}
	}
	if e.Now() != 30*Nanosecond {
		t.Fatalf("Now() = %v, want 30ns", e.Now())
	}
}

func TestEngineTieBreaksBySchedulingOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5*Nanosecond, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events fired out of order: %v", got)
		}
	}
}

func TestEngineAfterIsRelative(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100*Nanosecond, func() {
		e.After(50*Nanosecond, func() { at = e.Now() })
	})
	e.Run()
	if at != 150*Nanosecond {
		t.Fatalf("After fired at %v, want 150ns", at)
	}
}

func TestEngineSchedulingIntoPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	e.Run()
}

func TestEngineRunUntilLeavesLaterEventsPending(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10*Nanosecond, func() { fired++ })
	e.At(20*Nanosecond, func() { fired++ })
	e.At(30*Nanosecond, func() { fired++ })
	e.RunUntil(20 * Nanosecond)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if e.Now() != 20*Nanosecond {
		t.Fatalf("Now() = %v, want 20ns", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntilAdvancesClockToDeadline(t *testing.T) {
	e := NewEngine()
	e.RunUntil(42 * Nanosecond)
	if e.Now() != 42*Nanosecond {
		t.Fatalf("Now() = %v, want 42ns", e.Now())
	}
}

func TestEngineHaltStopsRun(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(10*Nanosecond, func() { fired++; e.Halt() })
	e.At(20*Nanosecond, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Halt should stop the run)", fired)
	}
	e.Run() // resumes
	if fired != 2 {
		t.Fatalf("fired = %d after resume, want 2", fired)
	}
}

func TestEngineCascadedEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 1000 {
			e.After(1*Nanosecond, tick)
		}
	}
	e.After(0, tick)
	e.Run()
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
	if e.Now() != 999*Nanosecond {
		t.Fatalf("Now() = %v, want 999ns", e.Now())
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{227 * Nanosecond, "227ns"},
		{1400 * Nanosecond, "1.4us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestFromNanos(t *testing.T) {
	if got := FromNanos(227); got != 227*Nanosecond {
		t.Errorf("FromNanos(227) = %v", got)
	}
	if got := FromNanos(0.5); got != 500*Picosecond {
		t.Errorf("FromNanos(0.5) = %v", got)
	}
}

func TestServerFIFO(t *testing.T) {
	var s Server
	start, done := s.Schedule(0, 10*Nanosecond)
	if start != 0 || done != 10*Nanosecond {
		t.Fatalf("first job start=%v done=%v", start, done)
	}
	// Arrives while busy: queues behind the first job.
	start, done = s.Schedule(5*Nanosecond, 10*Nanosecond)
	if start != 10*Nanosecond || done != 20*Nanosecond {
		t.Fatalf("second job start=%v done=%v", start, done)
	}
	// Arrives after idle: starts immediately.
	start, done = s.Schedule(100*Nanosecond, 5*Nanosecond)
	if start != 100*Nanosecond || done != 105*Nanosecond {
		t.Fatalf("third job start=%v done=%v", start, done)
	}
	if s.Jobs() != 3 {
		t.Fatalf("Jobs() = %d, want 3", s.Jobs())
	}
	if s.BusyTime() != 25*Nanosecond {
		t.Fatalf("BusyTime() = %v, want 25ns", s.BusyTime())
	}
}

func TestServerUtilization(t *testing.T) {
	var s Server
	s.Schedule(0, 50*Nanosecond)
	if u := s.Utilization(100 * Nanosecond); u != 0.5 {
		t.Fatalf("Utilization = %v, want 0.5", u)
	}
	if u := s.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", u)
	}
}

// Property: for any job sequence, start >= arrival, done = start + service,
// and service intervals never overlap.
func TestServerNoOverlapProperty(t *testing.T) {
	f := func(arrivals []uint16, services []uint8) bool {
		var s Server
		n := len(arrivals)
		if len(services) < n {
			n = len(services)
		}
		var prevDone Time
		var arr Time
		for i := 0; i < n; i++ {
			arr += Time(arrivals[i]) // monotone non-decreasing arrivals
			svc := Time(services[i])
			start, done := s.Schedule(arr, svc)
			if start < arr {
				return false
			}
			if done != start+svc {
				return false
			}
			if start < prevDone {
				return false // overlap
			}
			prevDone = done
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
	if NewRand(1).Uint64() == NewRand(2).Uint64() {
		t.Fatal("different seeds produced identical first values")
	}
}

func TestRandZeroSeedUsable(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed stuck at zero")
	}
}

func TestRandIntnRange(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 1000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of range", f)
		}
	}
}

func TestRandPermIsPermutation(t *testing.T) {
	r := NewRand(11)
	p := r.Perm(64)
	seen := make([]bool, 64)
	for _, v := range p {
		if v < 0 || v >= 64 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandJitterBounds(t *testing.T) {
	r := NewRand(13)
	base := 100 * Nanosecond
	for i := 0; i < 1000; i++ {
		j := r.Jitter(base, 0.1)
		if j < 90*Nanosecond || j > 110*Nanosecond {
			t.Fatalf("Jitter out of bounds: %v", j)
		}
	}
	if r.Jitter(base, 0) != base {
		t.Fatal("zero-fraction jitter must be identity")
	}
}

// Property: any batch of randomly-timed events executes in
// non-decreasing time order, with scheduling order breaking ties.
func TestEventOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		type fired struct {
			at  Time
			seq int
		}
		var log []fired
		for i, d := range delays {
			i, at := i, Time(d)*Nanosecond
			e.At(at, func() { log = append(log, fired{at: at, seq: i}) })
		}
		e.Run()
		if len(log) != len(delays) {
			return false
		}
		for i := 1; i < len(log); i++ {
			if log[i].at < log[i-1].at {
				return false
			}
			if log[i].at == log[i-1].at && log[i].seq < log[i-1].seq {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineProbeWakeSemantics(t *testing.T) {
	e := NewEngine()
	var wakes []Time
	// Arm at 100ns, re-arm every 100ns: events at 40, 80 must not wake
	// the probe; before the 120 event fires the 100 boundary is due and
	// fires exactly at 100; 130 is inside the next window; before 250
	// fires the 200 boundary is due and fires exactly at 200.
	e.SetProbe(func(now Time) Time {
		wakes = append(wakes, now)
		next := Time(100 * Nanosecond)
		for next <= now {
			next += 100 * Nanosecond
		}
		return next
	}, 100*Nanosecond)
	for _, at := range []Time{40, 80, 120, 130, 250} {
		e.At(at*Nanosecond, func() {})
	}
	e.Run()
	want := []Time{100 * Nanosecond, 200 * Nanosecond}
	if len(wakes) != len(want) || wakes[0] != want[0] || wakes[1] != want[1] {
		t.Fatalf("probe wakes = %v, want %v", wakes, want)
	}
}

func TestEngineProbeDisarmsOnStaleWake(t *testing.T) {
	e := NewEngine()
	calls := 0
	e.SetProbe(func(now Time) Time {
		calls++
		return 0 // not after now: disarm
	}, 10*Nanosecond)
	e.At(20*Nanosecond, func() {})
	e.At(30*Nanosecond, func() {})
	e.Run()
	if calls != 1 {
		t.Fatalf("disarmed probe fired %d times, want 1", calls)
	}
}

// ---- Quiescence fast-forward edge cases --------------------------------

// A monitor probe armed across a multi-millisecond idle gap must see
// every sample boundary at its exact virtual time when RunUntil crosses
// the whole gap in one quiescence fast-forward.
func TestRunUntilFastForwardFiresEveryProbeBoundary(t *testing.T) {
	e := NewEngine()
	var wakes []Time
	period := 10 * Microsecond
	e.SetProbe(func(now Time) Time {
		wakes = append(wakes, now)
		return now + period
	}, period)
	e.RunUntil(8 * Millisecond) // empty queue: pure fast-forward
	if len(wakes) != 800 {
		t.Fatalf("fast-forward fired %d probe wakes, want 800", len(wakes))
	}
	for i, w := range wakes {
		if want := Time(i+1) * period; w != want {
			t.Fatalf("wake %d at %v, want %v", i, w, want)
		}
	}
	if e.Now() != 8*Millisecond {
		t.Fatalf("clock parked at %v, want the 8ms deadline", e.Now())
	}
}

// A watchdog probe that schedules the timeout event it guards must see
// that event execute mid-jump at its own virtual instant, not get
// dragged to the deadline.
func TestRunUntilProbeScheduledEventsRunDuringJump(t *testing.T) {
	e := NewEngine()
	var probeAt, eventAt Time
	e.SetProbe(func(now Time) Time {
		probeAt = now
		e.After(7*Microsecond, func() { eventAt = e.Now() })
		return 0 // one-shot
	}, 5*Microsecond)
	e.RunUntil(1 * Millisecond)
	if probeAt != 5*Microsecond {
		t.Fatalf("watchdog woke at %v, want 5us", probeAt)
	}
	if eventAt != 12*Microsecond {
		t.Fatalf("watchdog-scheduled event ran at %v, want 12us", eventAt)
	}
	if e.Now() != 1*Millisecond {
		t.Fatalf("clock parked at %v, want the deadline", e.Now())
	}
}

// An event a probe schedules beyond the deadline stays pending: the
// fast-forward stops at the deadline, never over-runs it.
func TestRunUntilProbeEventBeyondDeadlineStaysPending(t *testing.T) {
	e := NewEngine()
	ran := false
	e.SetProbe(func(now Time) Time {
		e.After(50*Microsecond, func() { ran = true })
		return 0
	}, 5*Microsecond)
	e.RunUntil(10 * Microsecond)
	if ran {
		t.Fatal("event past the deadline ran during the jump")
	}
	if e.Now() != 10*Microsecond {
		t.Fatalf("clock at %v, want the 10us deadline", e.Now())
	}
	e.Run()
	if !ran {
		t.Fatal("pending event was lost by the fast-forward")
	}
	if e.Now() != 55*Microsecond {
		t.Fatalf("event executed at %v, want 55us", e.Now())
	}
}

// AlignTo is the fault campaign's parking jump: probe wakes it crosses
// fire at their exact times even though no events may run, and the
// probe stays armed for the boundary past the park point.
func TestAlignToFiresCrossedProbeWakesExactly(t *testing.T) {
	e := NewEngine()
	var wakes []Time
	e.SetProbe(func(now Time) Time {
		wakes = append(wakes, now)
		return now + 20*Microsecond
	}, 20*Microsecond)
	e.AlignTo(70 * Microsecond)
	if len(wakes) != 3 || wakes[0] != 20*Microsecond || wakes[1] != 40*Microsecond || wakes[2] != 60*Microsecond {
		t.Fatalf("AlignTo fired wakes %v, want exactly 20us/40us/60us", wakes)
	}
	if e.Now() != 70*Microsecond {
		t.Fatalf("clock parked at %v, want 70us", e.Now())
	}
	e.RunUntil(90 * Microsecond)
	if len(wakes) != 4 || wakes[3] != 80*Microsecond {
		t.Fatalf("post-align wake sequence %v, want a fourth at 80us", wakes)
	}
}

// A probe that schedules an event before the align point defeats the
// alignment; AlignTo must refuse loudly rather than skip the event.
func TestAlignToPanicsWhenProbeSchedulesEarlierEvent(t *testing.T) {
	e := NewEngine()
	e.SetProbe(func(now Time) Time {
		e.After(Nanosecond, func() {})
		return 0
	}, 10*Microsecond)
	defer func() {
		if recover() == nil {
			t.Fatal("AlignTo skipped a pending event without panicking")
		}
	}()
	e.AlignTo(50 * Microsecond)
}

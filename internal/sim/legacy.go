package sim

import "container/heap"

// legacyQueue is the seed-era event queue: a binary min-heap driven
// through container/heap, complete with the interface{} boxing on every
// push and pop. It is deliberately preserved — not as a fallback, but as
// an independent implementation of the (time, stamp, priority, seq)
// ordering contract.
// The determinism suite runs whole clusters on both queues and demands
// identical results, and tccbench -bench engine uses it as the paired
// baseline for speedup ratios.

type legacyEvent struct {
	at  Time
	sat Time
	pri uint64
	seq uint64
	h   Handler
	arg EventArg
}

type legacyHeap []legacyEvent

func (h legacyHeap) Len() int { return len(h) }
func (h legacyHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].sat != h[j].sat {
		return h[i].sat < h[j].sat
	}
	if h[i].pri != h[j].pri {
		return h[i].pri < h[j].pri
	}
	return h[i].seq < h[j].seq
}
func (h legacyHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *legacyHeap) Push(x interface{}) { *h = append(*h, x.(legacyEvent)) }
func (h *legacyHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

type legacyQueue struct {
	h legacyHeap
}

func (q *legacyQueue) len() int { return len(q.h) }

func (q *legacyQueue) push(at, sat Time, pri, seq uint64, h Handler, arg EventArg) {
	heap.Push(&q.h, legacyEvent{at: at, sat: sat, pri: pri, seq: seq, h: h, arg: arg})
}

func (q *legacyQueue) pop() (legacyEvent, bool) {
	if len(q.h) == 0 {
		return legacyEvent{}, false
	}
	return heap.Pop(&q.h).(legacyEvent), true
}

func (q *legacyQueue) peek() (Time, bool) {
	if len(q.h) == 0 {
		return 0, false
	}
	return q.h[0].at, true
}

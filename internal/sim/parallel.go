// Conservative parallel execution: a set of partition engines advanced
// in lockstep over global time windows whose width is the cross-partition
// lookahead (the minimum latency any partition needs before it can be
// influenced by another). Within a window every partition is causally
// independent, so partitions run concurrently on worker goroutines;
// cross-partition events travel through Mailboxes that are handed over
// only at window boundaries, under the coordinator's happens-before.
//
// The scheme is the classical synchronous conservative PDES barrier
// (Chandy-Misra lookahead without null messages): with L the minimum
// cross-partition latency and T the earliest pending timestamp anywhere,
// no event before T+L anywhere can be affected by another partition, so
// every partition may safely execute its events in [T, T+L].
package sim

import (
	"fmt"
	"time"
)

// maxTime is the largest representable virtual time, used as the window
// bound when the horizon is unbounded.
const maxTime = Time(1<<63 - 1)

// MailEntry is one deferred cross-partition event: schedule h/arg at
// absolute time At on the destination partition's engine. SchedAt and
// Pri are the producer partition's clock and lineage priority at post
// time; they become the event's ordering keys on the consumer engine, so
// same-timestamp arbitration (queue.go's (at, sat, pri, seq) order)
// resolves exactly as it would have in a serial run where the sender
// scheduled the event directly.
type MailEntry struct {
	At      Time
	SchedAt Time
	Pri     uint64
	H       Handler
	Arg     EventArg
}

// Mailbox is a single-producer single-consumer transfer queue between
// two partitions. The producer partition appends to the inflight slice
// during a window; the coordinator flips inflight to ready at the
// barrier (when neither worker is running); the consumer partition
// drains ready into its engine at the start of the next window. All
// handoffs are ordered by the barrier's channel synchronization, so no
// mutex or atomic is needed on the Post path.
type Mailbox struct {
	inflight []MailEntry
	ready    []MailEntry

	// From and To label the producer and consumer partitions for the
	// profiler's traffic matrix. Purely descriptive; set by whoever
	// wires the mailbox between partitions.
	From, To int
}

// Post records an event for the consumer partition, stamped with the
// producer engine's clock and current lineage priority. Only the
// producer partition's goroutine may call Post, and only while its
// window runs. Posting shrinks the producer's dynamic window bound to
// now + 2·lookahead: any causal chain triggered by this mail needs at
// least two cross-partition hops to come back, so the producer must
// not run past that horizon inside the current window.
func (mb *Mailbox) Post(from *Engine, at Time, h Handler, arg EventArg) {
	if from.postLook2 > 0 {
		if cap := from.now + from.postLook2; cap < from.winCap {
			from.winCap = cap
		}
	}
	mb.inflight = append(mb.inflight, MailEntry{
		At: at, SchedAt: from.now, Pri: from.eventPri(), H: h, Arg: arg,
	})
}

// flip publishes inflight entries to the consumer side. Coordinator
// only. Ready entries not yet drained (because the previous run ended
// before their partition's next window) are kept ahead of new ones.
func (mb *Mailbox) flip() {
	if len(mb.ready) == 0 {
		mb.inflight, mb.ready = mb.ready, mb.inflight
		return
	}
	mb.ready = append(mb.ready, mb.inflight...)
	mb.inflight = mb.inflight[:0]
}

// drainInto schedules every ready entry on the consumer's engine and
// clears the slice. Consumer partition only, at window start.
func (mb *Mailbox) drainInto(e *Engine) {
	for i := range mb.ready {
		en := &mb.ready[i]
		e.scheduleKeyed(en.At, en.SchedAt, en.Pri, en.H, en.Arg)
		en.H, en.Arg = nil, EventArg{} // drop references for GC
	}
	mb.ready = mb.ready[:0]
}

// Parallel advances a set of partition engines in conservative time
// windows. It is driven from a single control goroutine (the same one
// that owns the engines between runs); worker goroutines are spawned
// once, on the first run, and park on their command channels between
// windows, so repeated runs pay no spawn cost.
type Parallel struct {
	engs    []*Engine
	inboxes [][]*Mailbox // inboxes[p]: mailboxes consumed by partition p
	look    Time

	barrier func() // serial section at each window boundary

	sampleEvery Time
	sampleNext  Time
	sampleFn    func(now Time)

	actionNext func() (Time, bool) // earliest pending scripted action
	actionFire func(now Time)      // apply every action due at now

	active []bool // scratch: partitions with work this window
	nexts  []Time // scratch: per-partition earliest pending time
	bounds []Time // scratch: per-partition window bound

	// Persistent worker pool: spawned lazily on the first run and parked
	// on their command channels between windows and between runs, so a
	// run costs zero goroutine spawns.
	cmds []chan Time
	done chan int

	stats *ParallelStats // nil = no runtime accounting (zero cost)
}

// NewParallel builds an executor over engs. inboxes[p] lists the
// mailboxes whose entries are destined for partition p. look is the
// cross-partition lookahead; it must be positive, otherwise the window
// never advances past the earliest event and the barrier livelocks.
func NewParallel(engs []*Engine, inboxes [][]*Mailbox, look Time) (*Parallel, error) {
	if len(engs) < 1 {
		return nil, fmt.Errorf("sim: parallel executor needs at least one engine")
	}
	if len(inboxes) != len(engs) {
		return nil, fmt.Errorf("sim: %d inbox sets for %d engines", len(inboxes), len(engs))
	}
	if look <= 0 {
		return nil, fmt.Errorf("sim: non-positive lookahead %v livelocks the window barrier", look)
	}
	// One root-priority counter across all partitions keeps driver-side
	// scheduling (workload setup between runs) numbered in global call
	// order, matching what a single serial engine would have assigned.
	for _, e := range engs[1:] {
		e.SharePriorityCounter(engs[0])
	}
	// Arm the dynamic window cap: a partition that posts mail may not
	// run past post-time + 2·look within the same window (see
	// Mailbox.Post).
	for _, e := range engs {
		e.postLook2 = 2 * look
	}
	return &Parallel{
		engs:    engs,
		inboxes: inboxes,
		look:    look,
		active:  make([]bool, len(engs)),
		nexts:   make([]Time, len(engs)),
		bounds:  make([]Time, len(engs)),
	}, nil
}

// Lookahead returns the window width the executor synchronizes on.
func (p *Parallel) Lookahead() Time { return p.look }

// Now returns the global virtual time: the maximum over partition
// clocks. Between runs all clocks are aligned, so this equals each
// partition's local now.
func (p *Parallel) Now() Time {
	var now Time
	for _, e := range p.engs {
		if e.Now() > now {
			now = e.Now()
		}
	}
	return now
}

// Fired returns the total number of events executed across partitions.
func (p *Parallel) Fired() uint64 {
	var n uint64
	for _, e := range p.engs {
		n += e.Fired()
	}
	return n
}

// SetStats installs runtime accounting. st must be sized for the
// executor's partition count. Nil disables accounting; the only cost
// when disabled is one nil check per window.
func (p *Parallel) SetStats(st *ParallelStats) { p.stats = st }

// Stats returns the installed runtime accounting, if any.
func (p *Parallel) Stats() *ParallelStats { return p.stats }

// SetBarrierHook installs fn to run in the coordinator's serial section
// after every window (workers parked). Used to merge trace shards and
// repatriate cross-partition packet-pool releases.
func (p *Parallel) SetBarrierHook(fn func()) { p.barrier = fn }

// SetSampleHook arranges for fn(now) to be called from the serial
// section whenever the global clock crosses a multiple of every. It
// mirrors Engine.SetProbe for the parallel executor: windows are
// clamped to sample boundaries, so fn observes a quiesced simulation at
// (or just past) each boundary.
func (p *Parallel) SetSampleHook(every Time, fn func(now Time)) {
	if fn == nil || every <= 0 {
		p.sampleFn = nil
		return
	}
	p.sampleEvery = every
	p.sampleNext = p.Now() + every
	p.sampleFn = fn
}

// SetActionHook installs a scripted-action source (a fault campaign).
// next reports the earliest pending action's absolute time; fire applies
// every action due at that time. The coordinator clamps each window to
// end strictly before the next action, aligns all partition clocks to
// the action time, and calls fire in the serial section with every
// worker parked — so an action observes exactly the events before its
// timestamp and none at or after it, the same cut a serial engine
// produces. fire may only schedule follow-up actions strictly later
// than now.
func (p *Parallel) SetActionHook(next func() (Time, bool), fire func(now Time)) {
	p.actionNext = next
	p.actionFire = fire
}

// Run executes windows until no partition has pending events or mail.
// Pending scripted actions count as work: a rejoin scheduled on an idle
// fabric still fires.
func (p *Parallel) Run() { p.run(maxTime, false) }

// RunUntil executes windows until every event at or before deadline has
// fired, then aligns all partition clocks to the deadline.
func (p *Parallel) RunUntil(deadline Time) { p.run(deadline, true) }

// RunFor advances the cluster by d picoseconds of virtual time.
func (p *Parallel) RunFor(d Time) { p.run(p.Now()+d, true) }

// run is the coordinator loop. Each iteration: flip mailboxes, find
// each partition's earliest pending timestamp (events or undelivered
// mail), then execute a per-partition window on every partition that
// has work, then run the serial barrier section.
//
// Windows are adaptively widened per partition: partition p can only be
// influenced by a peer q through mail posted at q's local clock plus at
// least the cross-partition lookahead, so p may safely run to
// min(next_q over q != p) + look — potentially far past the classical
// global bound tnext+look. When every peer is idle the bound degenerates
// to the run deadline: the lone active partition fast-forwards through
// its remaining work in a single window instead of draining one
// lookahead-sized window per iteration.
func (p *Parallel) run(deadline Time, bounded bool) {
	n := len(p.engs)
	if p.cmds == nil {
		p.cmds = make([]chan Time, n)
		p.done = make(chan int, n)
		for i := 0; i < n; i++ {
			p.cmds[i] = make(chan Time, 1)
			go p.worker(i, p.cmds[i], p.done)
		}
	}
	cmds, done := p.cmds, p.done

	st := p.stats
	for {
		// Serial section: publish last window's mail, find the horizon.
		var serialT0 time.Time
		if st != nil {
			serialT0 = time.Now()
		}
		tnext := maxTime
		have := false
		for pi := range p.engs {
			p.active[pi] = false
			next := maxTime
			for _, mb := range p.inboxes[pi] {
				if st != nil && len(mb.inflight) > 0 {
					st.addMail(mb.From, mb.To, len(mb.inflight))
				}
				mb.flip()
				for i := range mb.ready {
					if at := mb.ready[i].At; at < next {
						next = at
					}
				}
				if len(mb.ready) > 0 {
					p.active[pi] = true
					have = true
				}
			}
			if t, ok := p.engs[pi].nextTime(); ok {
				if t < next {
					next = t
				}
				p.active[pi] = true
				have = true
			}
			p.nexts[pi] = next
			if next < tnext {
				tnext = next
			}
		}
		// Scripted actions (fault campaigns) cut the timeline exactly at
		// their timestamp: fire when nothing earlier is pending, otherwise
		// clamp the window to end strictly before the action.
		aat, aok := Time(0), false
		if p.actionNext != nil {
			aat, aok = p.actionNext()
			if aok && bounded && aat > deadline {
				aok = false
			}
		}
		if aok && (!have || aat <= tnext) {
			for _, e := range p.engs {
				e.AlignTo(aat)
			}
			// Fire every sample boundary the jump crosses, each at its
			// exact time (matching the serial engine's probe semantics).
			for p.sampleFn != nil && p.sampleNext <= aat {
				at := p.sampleNext
				p.sampleNext += p.sampleEvery
				p.sampleFn(at)
			}
			p.actionFire(aat)
			if st != nil {
				st.serial.Add(time.Since(serialT0).Nanoseconds())
			}
			continue
		}
		if !have || (bounded && tnext > deadline) {
			if st != nil {
				st.serial.Add(time.Since(serialT0).Nanoseconds())
			}
			break
		}

		// First and second smallest per-partition horizons: partition
		// pi's bound is the smallest next over its peers, which is m1
		// unless pi itself is the unique holder of m1, then m2.
		m1, m2, m1i := maxTime, maxTime, -1
		for pi, t := range p.nexts {
			if t < m1 {
				m1, m2, m1i = t, m1, pi
			} else if t < m2 {
				m2 = t
			}
		}

		// wmin is the time every active partition is guaranteed to have
		// reached after the window — the instant a pending sample hook
		// observes a fully quiesced simulation.
		wmin := maxTime
		for pi := range p.engs {
			if !p.active[pi] {
				continue
			}
			other := m1
			if pi == m1i {
				other = m2
			}
			w := other + p.look
			if w < other { // overflow (peers idle: other == maxTime)
				w = maxTime
			}
			if p.sampleFn != nil && p.sampleNext > tnext && w > p.sampleNext {
				w = p.sampleNext
			}
			if aok && w >= aat {
				w = aat - 1 // aat > tnext here, so the window stays non-empty
			}
			if bounded && w > deadline {
				w = deadline
			}
			p.bounds[pi] = w
			if w < wmin {
				wmin = w
			}
		}

		// Parallel section: partitions with work run concurrently.
		if st != nil {
			st.serial.Add(time.Since(serialT0).Nanoseconds())
			st.resetWindow()
		}
		dispatched := 0
		for pi := range p.engs {
			if p.active[pi] {
				cmds[pi] <- p.bounds[pi]
				dispatched++
			}
		}
		for i := 0; i < dispatched; i++ {
			<-done
		}
		if st != nil {
			st.noteWindow(p.active)
		}

		// Serial section: merge shards, repatriate pool releases, sample.
		if p.barrier != nil {
			p.barrier()
		}
		if p.sampleFn != nil && p.sampleNext <= wmin {
			for p.sampleNext <= wmin {
				p.sampleNext += p.sampleEvery
			}
			p.sampleFn(wmin)
		}
	}

	// Align every clock to the common end time. The jump is a
	// quiescence fast-forward: every sample boundary it crosses fires
	// its own call at its exact virtual time (mirrors the serial
	// engine's exact-wake probe semantics), so an idle tail — e.g.
	// doorbell receivers parked with no events pending — still produces
	// the full monitor sample train.
	target := p.Now()
	if bounded && deadline > target {
		target = deadline
	}
	for _, e := range p.engs {
		e.RunUntil(target)
	}
	if p.barrier != nil {
		p.barrier()
	}
	for p.sampleFn != nil && p.sampleNext <= target {
		at := p.sampleNext
		p.sampleNext += p.sampleEvery
		p.sampleFn(at)
	}
}

// worker executes window deadlines for one partition for the lifetime
// of the executor. Draining the partition's inboxes happens here,
// inside the window, so the coordinator's flip and the drain never
// overlap.
func (p *Parallel) worker(idx int, cmds chan Time, done chan int) {
	eng := p.engs[idx]
	for w := range cmds {
		if st := p.stats; st != nil {
			t0 := time.Now()
			f0 := eng.Fired()
			for _, mb := range p.inboxes[idx] {
				mb.drainInto(eng)
			}
			eng.runEvents(w)
			st.winBusy[idx] = time.Since(t0).Nanoseconds()
			st.winEvents[idx] = eng.Fired() - f0
		} else {
			for _, mb := range p.inboxes[idx] {
				mb.drainInto(eng)
			}
			eng.runEvents(w)
		}
		done <- idx
	}
}

// Conservative parallel execution: a set of partition engines advanced
// in lockstep over global time windows bounded by cross-partition
// lookahead (the minimum latency any partition needs before it can be
// influenced by another). Within a window every partition is causally
// independent, so partitions run concurrently on worker goroutines;
// cross-partition events travel through Mailboxes that are handed over
// only at window boundaries, under the coordinator's happens-before.
//
// The scheme is the classical synchronous conservative PDES barrier
// (Chandy-Misra lookahead without null messages), sharpened in two
// ways. First, the bound is per partition pair: partition p may run to
// min over peers q of (next_q + dist(q, p)), where dist is the
// all-pairs shortest cross-partition latency (Floyd-Warshall over the
// partition quotient graph), not the single global minimum. Second, a
// partition whose peers are all idle is unconstrained and fast-forwards
// to the run deadline in one window — and snaps back to narrow windows
// the moment a peer posts mail, because the post both caps the producer
// (Mailbox.Post) and re-arms the consumer's horizon at the next
// barrier. An idle consumer's clock stays parked until mail arrives, so
// a post landing mid-widened-window is still delivered and executed at
// its exact virtual time.
package sim

import (
	"fmt"
	"math/bits"
	"time"
)

// maxTime is the largest representable virtual time, used as the window
// bound when the horizon is unbounded.
const maxTime = Time(1<<63 - 1)

// MailEntry is one deferred cross-partition event: schedule h/arg at
// absolute time At on the destination partition's engine. SchedAt and
// Pri are the producer partition's clock and lineage priority at post
// time; they become the event's ordering keys on the consumer engine, so
// same-timestamp arbitration (queue.go's (at, sat, pri, seq) order)
// resolves exactly as it would have in a serial run where the sender
// scheduled the event directly.
type MailEntry struct {
	At      Time
	SchedAt Time
	Pri     uint64
	H       Handler
	Arg     EventArg
}

// Mailbox is a single-producer single-consumer transfer queue between
// two partitions. The producer partition appends to the inflight slice
// during a window; the coordinator flips inflight to ready at the
// barrier (when neither worker is running); the consumer partition
// drains ready into its engine at the start of the next window. All
// handoffs are ordered by the barrier's channel synchronization, so no
// mutex or atomic is needed on the Post path. Both slices retain their
// capacity across windows, so a steady-state run allocates nothing on
// the mail path.
type Mailbox struct {
	inflight []MailEntry
	ready    []MailEntry

	// readyMin caches the earliest At over ready entries (maxTime when
	// ready is empty), so the coordinator's horizon scan touches only
	// one word per queued mailbox instead of every entry.
	readyMin Time

	// From and To label the producer and consumer partitions for the
	// profiler's traffic matrix. Purely descriptive; set by whoever
	// wires the mailbox between partitions.
	From, To int

	// Executor wiring, set by NewParallel: cons is the consuming
	// partition (derived from the inboxes lists, independent of the
	// descriptive From/To), idx the mailbox's global wiring order —
	// the stable drain-order key that keeps seq tiebreaks for
	// identical (at, sat, pri) entries bit-identical to a fixed
	// inbox-scan drain. dirty marks membership in the producer
	// engine's mailDirty list, queued membership in the consumer's
	// readyBoxes list.
	cons   int
	idx    int
	dirty  bool
	queued bool
}

// Post records an event for the consumer partition, stamped with the
// producer engine's clock and current lineage priority. Only the
// producer partition's goroutine may call Post, and only while its
// window runs. Posting shrinks the producer's dynamic window bound to
// now + 2·lookahead: any causal chain triggered by this mail needs at
// least two cross-partition hops to come back, so the producer must
// not run past that horizon inside the current window. The first post
// into a quiet mailbox also enrolls it in the producer's dirty list —
// the coordinator flips only dirty mailboxes at the barrier.
func (mb *Mailbox) Post(from *Engine, at Time, h Handler, arg EventArg) {
	if from.postLook2 > 0 {
		if cap := from.now + from.postLook2; cap < from.winCap {
			from.winCap = cap
		}
	}
	if !mb.dirty {
		mb.dirty = true
		from.mailDirty = append(from.mailDirty, mb)
	}
	mb.inflight = append(mb.inflight, MailEntry{
		At: at, SchedAt: from.now, Pri: from.eventPri(), H: h, Arg: arg,
	})
}

// flip publishes inflight entries to the consumer side and refreshes
// readyMin. Coordinator only. Ready entries not yet drained (because
// the previous run ended before their partition's next window) are kept
// ahead of new ones.
func (mb *Mailbox) flip() {
	for i := range mb.inflight {
		if at := mb.inflight[i].At; at < mb.readyMin {
			mb.readyMin = at
		}
	}
	if len(mb.ready) == 0 {
		mb.inflight, mb.ready = mb.ready, mb.inflight
		return
	}
	mb.ready = append(mb.ready, mb.inflight...)
	mb.inflight = mb.inflight[:0]
}

// drainInto schedules every ready entry on the consumer's engine and
// clears the slice. Consumer partition only, at window start.
func (mb *Mailbox) drainInto(e *Engine) {
	for i := range mb.ready {
		en := &mb.ready[i]
		e.scheduleKeyed(en.At, en.SchedAt, en.Pri, en.H, en.Arg)
		en.H, en.Arg = nil, EventArg{} // drop references for GC
	}
	mb.ready = mb.ready[:0]
	mb.readyMin = maxTime
}

// Parallel advances a set of partition engines in conservative time
// windows. It is driven from a single control goroutine (the same one
// that owns the engines between runs); worker goroutines are spawned
// once, on the first run, and park on their command channels between
// windows, so repeated runs pay no spawn cost.
type Parallel struct {
	engs    []*Engine
	inboxes [][]*Mailbox // inboxes[p]: mailboxes consumed by partition p
	look    Time

	// dist[q][p] is the minimum cross-partition virtual latency of any
	// causal chain from partition q to partition p (all-pairs shortest
	// path over per-pair direct lookaheads; maxTime when unreachable,
	// 0 on the diagonal). Nil selects the uniform fallback: every pair
	// at distance look over a complete influence graph.
	dist [][]Time

	barrier func() // serial section at each window boundary

	sampleEvery Time
	sampleNext  Time
	sampleFn    func(now Time)

	actionNext func() (Time, bool) // earliest pending scripted action
	actionFire func(now Time)      // apply every action due at now

	active []bool // scratch: partitions with work this window
	nexts  []Time // scratch: per-partition earliest pending time
	bounds []Time // scratch: per-partition window bound

	// readyBoxes[p] lists mailboxes holding undelivered ready entries
	// for partition p, kept sorted by wiring order (Mailbox.idx) so the
	// consumer drains them in the same fixed order a full inbox scan
	// would. The coordinator enqueues at the barrier; the consumer
	// truncates after draining, capacity retained.
	readyBoxes [][]*Mailbox

	// Persistent worker pool: spawned lazily on the first run and parked
	// on their command channels between windows and between runs, so a
	// run costs zero goroutine spawns.
	cmds []chan Time
	done chan int

	stats *ParallelStats // nil = no runtime accounting (zero cost)
}

// NewParallel builds an executor over engs. inboxes[p] lists the
// mailboxes whose entries are destined for partition p. look is the
// cross-partition lookahead; it must be positive, otherwise the window
// never advances past the earliest event and the barrier livelocks.
func NewParallel(engs []*Engine, inboxes [][]*Mailbox, look Time) (*Parallel, error) {
	if len(engs) < 1 {
		return nil, fmt.Errorf("sim: parallel executor needs at least one engine")
	}
	if len(inboxes) != len(engs) {
		return nil, fmt.Errorf("sim: %d inbox sets for %d engines", len(inboxes), len(engs))
	}
	if look <= 0 {
		return nil, fmt.Errorf("sim: non-positive lookahead %v livelocks the window barrier", look)
	}
	// One root-priority counter across all partitions keeps driver-side
	// scheduling (workload setup between runs) numbered in global call
	// order, matching what a single serial engine would have assigned.
	for _, e := range engs[1:] {
		e.SharePriorityCounter(engs[0])
	}
	// Arm the dynamic window cap: a partition that posts mail may not
	// run past post-time + 2·look within the same window (see
	// Mailbox.Post).
	for _, e := range engs {
		e.postLook2 = 2 * look
	}
	p := &Parallel{
		engs:       engs,
		inboxes:    inboxes,
		look:       look,
		active:     make([]bool, len(engs)),
		nexts:      make([]Time, len(engs)),
		bounds:     make([]Time, len(engs)),
		readyBoxes: make([][]*Mailbox, len(engs)),
	}
	// Wire every mailbox to its consumer and stamp the global wiring
	// order that fixes drain order across dirty-set handoffs. A mailbox
	// handed over with entries already published is enqueued right away.
	idx := 0
	for pi, boxes := range inboxes {
		for _, mb := range boxes {
			mb.cons = pi
			mb.idx = idx
			idx++
			mb.readyMin = maxTime
			for i := range mb.ready {
				if at := mb.ready[i].At; at < mb.readyMin {
					mb.readyMin = at
				}
			}
			if len(mb.ready) > 0 && !mb.queued {
				mb.queued = true
				p.enqueueReady(mb)
			}
		}
	}
	return p, nil
}

// Lookahead returns the minimum cross-partition lookahead the executor
// synchronizes on.
func (p *Parallel) Lookahead() Time { return p.look }

// SetPairLookahead installs the direct cross-partition latency matrix:
// direct[q][p] is the minimum virtual latency of mail posted by
// partition q for partition p, or 0 when q never posts to p directly.
// The executor closes the matrix under composition (Floyd-Warshall), so
// a partition's window bound accounts for multi-hop influence chains
// through idle intermediates. Every finite direct entry must be at
// least the executor's global lookahead — the producer-side window cap
// (Mailbox.Post) is derived from it.
func (p *Parallel) SetPairLookahead(direct [][]Time) error {
	n := len(p.engs)
	if len(direct) != n {
		return fmt.Errorf("sim: pair lookahead matrix is %dx, want %dx%d", len(direct), n, n)
	}
	d := make([][]Time, n)
	for i := range d {
		if len(direct[i]) != n {
			return fmt.Errorf("sim: pair lookahead row %d has %d entries, want %d", i, len(direct[i]), n)
		}
		d[i] = make([]Time, n)
		for j := range d[i] {
			w := direct[i][j]
			switch {
			case i == j:
				d[i][j] = 0
			case w <= 0:
				d[i][j] = maxTime
			case w < p.look:
				return fmt.Errorf("sim: pair lookahead %v for %d->%d below global lookahead %v", w, i, j, p.look)
			default:
				d[i][j] = w
			}
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			dik := d[i][k]
			if dik == maxTime {
				continue
			}
			for j := 0; j < n; j++ {
				if dkj := d[k][j]; dkj != maxTime && dik+dkj < d[i][j] {
					d[i][j] = dik + dkj
				}
			}
		}
	}
	p.dist = d
	return nil
}

// Now returns the global virtual time: the maximum over partition
// clocks. Between runs all clocks are aligned, so this equals each
// partition's local now.
func (p *Parallel) Now() Time {
	var now Time
	for _, e := range p.engs {
		if e.Now() > now {
			now = e.Now()
		}
	}
	return now
}

// Fired returns the total number of events executed across partitions.
func (p *Parallel) Fired() uint64 {
	var n uint64
	for _, e := range p.engs {
		n += e.Fired()
	}
	return n
}

// SetStats installs runtime accounting. st must be sized for the
// executor's partition count. Nil disables accounting; the only cost
// when disabled is one nil check per window.
func (p *Parallel) SetStats(st *ParallelStats) { p.stats = st }

// Stats returns the installed runtime accounting, if any.
func (p *Parallel) Stats() *ParallelStats { return p.stats }

// SetBarrierHook installs fn to run in the coordinator's serial section
// after every window (workers parked). Used to merge trace shards and
// repatriate cross-partition packet-pool releases.
func (p *Parallel) SetBarrierHook(fn func()) { p.barrier = fn }

// SetSampleHook arranges for fn(now) to be called from the serial
// section whenever the global clock crosses a multiple of every. It
// mirrors Engine.SetProbe for the parallel executor: windows are
// clamped to sample boundaries, so fn observes a quiesced simulation at
// (or just past) each boundary.
func (p *Parallel) SetSampleHook(every Time, fn func(now Time)) {
	if fn == nil || every <= 0 {
		p.sampleFn = nil
		return
	}
	p.sampleEvery = every
	p.sampleNext = p.Now() + every
	p.sampleFn = fn
}

// SetActionHook installs a scripted-action source (a fault campaign).
// next reports the earliest pending action's absolute time; fire applies
// every action due at that time. The coordinator clamps each window to
// end strictly before the next action, aligns all partition clocks to
// the action time, and calls fire in the serial section with every
// worker parked — so an action observes exactly the events before its
// timestamp and none at or after it, the same cut a serial engine
// produces. fire may only schedule follow-up actions strictly later
// than now.
func (p *Parallel) SetActionHook(next func() (Time, bool), fire func(now Time)) {
	p.actionNext = next
	p.actionFire = fire
}

// Run executes windows until no partition has pending events or mail.
// Pending scripted actions count as work: a rejoin scheduled on an idle
// fabric still fires.
func (p *Parallel) Run() { p.run(maxTime, false) }

// RunUntil executes windows until every event at or before deadline has
// fired, then aligns all partition clocks to the deadline.
func (p *Parallel) RunUntil(deadline Time) { p.run(deadline, true) }

// RunFor advances the cluster by d picoseconds of virtual time.
func (p *Parallel) RunFor(d Time) { p.run(p.Now()+d, true) }

// flipDirty publishes last window's mail: every mailbox posted to since
// the previous barrier is flipped and enqueued on its consumer's
// readyBoxes list, in wiring order. O(posts), independent of the
// partition-pair count. Coordinator only, workers parked.
func (p *Parallel) flipDirty(st *ParallelStats) {
	flips := 0
	for _, e := range p.engs {
		if len(e.mailDirty) == 0 {
			continue
		}
		for _, mb := range e.mailDirty {
			mb.dirty = false
			if st != nil {
				st.addMail(mb.From, mb.To, len(mb.inflight))
			}
			mb.flip()
			if !mb.queued && len(mb.ready) > 0 {
				mb.queued = true
				p.enqueueReady(mb)
			}
			flips++
		}
		e.mailDirty = e.mailDirty[:0]
	}
	if st != nil && flips > 0 {
		st.dirtyFlips.Add(uint64(flips))
	}
}

// enqueueReady inserts mb into its consumer's readyBoxes list, keeping
// the list sorted by wiring order so drains replay the fixed scan order
// and seq tiebreaks stay bit-identical to a serial run.
func (p *Parallel) enqueueReady(mb *Mailbox) {
	boxes := append(p.readyBoxes[mb.cons], mb)
	i := len(boxes) - 1
	for i > 0 && boxes[i-1].idx > mb.idx {
		boxes[i] = boxes[i-1]
		i--
	}
	boxes[i] = mb
	p.readyBoxes[mb.cons] = boxes
}

// drainReady delivers every queued ready mailbox for partition idx into
// its engine, in wiring order. Runs on the consumer partition's
// goroutine at window start; safe against the coordinator's enqueue via
// the window dispatch happens-before.
func (p *Parallel) drainReady(idx int, eng *Engine) {
	boxes := p.readyBoxes[idx]
	if len(boxes) == 0 {
		return
	}
	for i, mb := range boxes {
		mb.drainInto(eng)
		mb.queued = false
		boxes[i] = nil
	}
	p.readyBoxes[idx] = boxes[:0]
}

// execWindow drains partition idx's pending mail and runs its events up
// to bound w. Called from the partition's worker goroutine — or inline
// on the coordinator when this is the only active partition, skipping
// the channel round-trip entirely.
func (p *Parallel) execWindow(idx int, w Time) {
	eng := p.engs[idx]
	if st := p.stats; st != nil {
		t0 := time.Now()
		f0 := eng.Fired()
		p.drainReady(idx, eng)
		eng.runEvents(w)
		st.winBusy[idx] = time.Since(t0).Nanoseconds()
		st.winEvents[idx] = eng.Fired() - f0
	} else {
		p.drainReady(idx, eng)
		eng.runEvents(w)
	}
}

// run is the coordinator loop. Each iteration: flip dirty mailboxes,
// find each partition's earliest pending timestamp (events or
// undelivered mail), then execute a per-partition window on every
// partition that has work, then run the serial barrier section.
//
// Windows are adaptively widened per partition pair: partition p can
// only be influenced by a peer q through mail that costs at least
// dist(q, p) of virtual latency from q's current horizon, so p may
// safely run to min over q of (next_q + dist(q, p)) — potentially far
// past the classical global bound tnext+look. When every peer is idle
// (or unreachable) the bound degenerates to the run deadline: the lone
// active partition fast-forwards through its remaining work in a single
// window instead of draining one lookahead-sized window per iteration.
// The producer-side cap (Mailbox.Post) covers the one influence the
// matrix excludes — a chain leaving p and returning to it within the
// same window.
func (p *Parallel) run(deadline Time, bounded bool) {
	n := len(p.engs)
	if p.cmds == nil {
		p.cmds = make([]chan Time, n)
		p.done = make(chan int, n)
		for i := 0; i < n; i++ {
			p.cmds[i] = make(chan Time, 1)
			go p.worker(i, p.cmds[i], p.done)
		}
	}
	cmds, done := p.cmds, p.done

	st := p.stats
	for {
		// Serial section: publish last window's mail, find the horizon.
		var serialT0 time.Time
		if st != nil {
			serialT0 = time.Now()
		}
		p.flipDirty(st)
		tnext := maxTime
		have := false
		for pi := range p.engs {
			p.active[pi] = false
			next := maxTime
			for _, mb := range p.readyBoxes[pi] {
				if mb.readyMin < next {
					next = mb.readyMin
				}
			}
			if next < maxTime {
				p.active[pi] = true
				have = true
			}
			if t, ok := p.engs[pi].nextTime(); ok {
				if t < next {
					next = t
				}
				p.active[pi] = true
				have = true
			}
			p.nexts[pi] = next
			if next < tnext {
				tnext = next
			}
		}
		// Scripted actions (fault campaigns) cut the timeline exactly at
		// their timestamp: fire when nothing earlier is pending, otherwise
		// clamp the window to end strictly before the action.
		aat, aok := Time(0), false
		if p.actionNext != nil {
			aat, aok = p.actionNext()
			if aok && bounded && aat > deadline {
				aok = false
			}
		}
		if aok && (!have || aat <= tnext) {
			for _, e := range p.engs {
				e.AlignTo(aat)
			}
			// Fire every sample boundary the jump crosses, each at its
			// exact time (matching the serial engine's probe semantics).
			for p.sampleFn != nil && p.sampleNext <= aat {
				at := p.sampleNext
				p.sampleNext += p.sampleEvery
				p.sampleFn(at)
			}
			p.actionFire(aat)
			if st != nil {
				st.serial.Add(time.Since(serialT0).Nanoseconds())
			}
			continue
		}
		if !have || (bounded && tnext > deadline) {
			if st != nil {
				st.serial.Add(time.Since(serialT0).Nanoseconds())
			}
			break
		}

		// First and second smallest per-partition horizons, for the
		// uniform fallback (no pair matrix): partition pi's bound is the
		// smallest next over its peers, which is m1 unless pi itself is
		// the unique holder of m1, then m2.
		m1, m2, m1i := maxTime, maxTime, -1
		if p.dist == nil {
			for pi, t := range p.nexts {
				if t < m1 {
					m1, m2, m1i = t, m1, pi
				} else if t < m2 {
					m2 = t
				}
			}
		}

		// wmin is the time every active partition is guaranteed to have
		// reached after the window — the instant a pending sample hook
		// observes a fully quiesced simulation.
		wmin := maxTime
		for pi := range p.engs {
			if !p.active[pi] {
				continue
			}
			var w Time
			if p.dist != nil {
				// Per-pair bound: the earliest instant any peer's pending
				// work could influence pi.
				w = maxTime
				for qi, t := range p.nexts {
					if qi == pi || t == maxTime {
						continue
					}
					d := p.dist[qi][pi]
					if d == maxTime {
						continue
					}
					b := t + d
					if b < t { // overflow
						b = maxTime
					}
					if b < w {
						w = b
					}
				}
			} else {
				other := m1
				if pi == m1i {
					other = m2
				}
				w = other + p.look
				if w < other { // overflow (peers idle: other == maxTime)
					w = maxTime
				}
			}
			if p.sampleFn != nil && p.sampleNext > tnext && w > p.sampleNext {
				w = p.sampleNext
			}
			if aok && w >= aat {
				w = aat - 1 // aat > tnext here, so the window stays non-empty
			}
			if bounded && w > deadline {
				w = deadline
			}
			p.bounds[pi] = w
			if w < wmin {
				wmin = w
			}
		}

		// Parallel section: partitions with work run concurrently. A
		// lone active partition runs inline on the coordinator — no
		// channel round-trip, no worker wakeup.
		if st != nil {
			st.serial.Add(time.Since(serialT0).Nanoseconds())
			st.resetWindow()
			st.noteWidth(wmin-tnext, p.look)
		}
		dispatched, lone := 0, -1
		for pi := range p.engs {
			if p.active[pi] {
				if dispatched == 0 {
					lone = pi
				}
				dispatched++
			}
		}
		if dispatched == 1 {
			p.execWindow(lone, p.bounds[lone])
		} else {
			for pi := range p.engs {
				if p.active[pi] {
					cmds[pi] <- p.bounds[pi]
				}
			}
			for i := 0; i < dispatched; i++ {
				<-done
			}
		}
		if st != nil {
			st.noteWindow(p.active)
		}

		// Serial section: merge shards, repatriate pool releases, sample.
		if p.barrier != nil {
			p.barrier()
		}
		if p.sampleFn != nil && p.sampleNext <= wmin {
			for p.sampleNext <= wmin {
				p.sampleNext += p.sampleEvery
			}
			p.sampleFn(wmin)
		}
	}

	// Align every clock to the common end time. The jump is a
	// quiescence fast-forward: every sample boundary it crosses fires
	// its own call at its exact virtual time (mirrors the serial
	// engine's exact-wake probe semantics), so an idle tail — e.g.
	// doorbell receivers parked with no events pending — still produces
	// the full monitor sample train.
	target := p.Now()
	if bounded && deadline > target {
		target = deadline
	}
	for _, e := range p.engs {
		e.RunUntil(target)
	}
	if p.barrier != nil {
		p.barrier()
	}
	for p.sampleFn != nil && p.sampleNext <= target {
		at := p.sampleNext
		p.sampleNext += p.sampleEvery
		p.sampleFn(at)
	}
}

// worker executes window deadlines for one partition for the lifetime
// of the executor. Draining the partition's queued mailboxes happens
// here, inside the window, so the coordinator's flip and the drain
// never overlap.
func (p *Parallel) worker(idx int, cmds chan Time, done chan int) {
	for w := range cmds {
		p.execWindow(idx, w)
		done <- idx
	}
}

// widthBucket maps a window width in picoseconds to its log2 histogram
// bucket (bucket k counts widths in [2^(k-1), 2^k), bucket 0 widths of
// zero).
func widthBucket(w Time) int {
	if w <= 0 {
		return 0
	}
	return bits.Len64(uint64(w))
}

package sim

import (
	"strings"
	"testing"
)

// relay bounces a token between two partitions through mailboxes,
// recording the virtual time of every hop. delta stands in for the link
// latency and must be >= the executor's lookahead for causal delivery.
type relay struct {
	out   *Mailbox
	peer  *relay
	delta Time
	hops  []Time
}

func (r *relay) OnEvent(e *Engine, arg EventArg) {
	r.hops = append(r.hops, e.Now())
	if arg.I > 0 {
		r.out.Post(e, e.Now()+r.delta, r.peer, EventArg{I: arg.I - 1})
	}
}

// serialRelay is the single-engine reference for the same bounce chain.
type serialRelay struct {
	peer  *serialRelay
	delta Time
	hops  []Time
}

func (r *serialRelay) OnEvent(e *Engine, arg EventArg) {
	r.hops = append(r.hops, e.Now())
	if arg.I > 0 {
		e.ScheduleAfter(r.delta, r.peer, EventArg{I: arg.I - 1})
	}
}

func TestParallelMatchesSerialRelay(t *testing.T) {
	const (
		look  = 10 * Nanosecond
		delta = 13 * Nanosecond // deliberately not a multiple of look
		n     = 40
	)

	// Serial reference.
	se := NewEngine()
	sa := &serialRelay{delta: delta}
	sb := &serialRelay{delta: delta, peer: sa}
	sa.peer = sb
	se.Schedule(5*Nanosecond, sa, EventArg{I: n})
	se.Run()

	// Two partitions, one mailbox each way.
	ea, eb := NewEngine(), NewEngine()
	toA, toB := &Mailbox{}, &Mailbox{}
	ra := &relay{out: toB, delta: delta}
	rb := &relay{out: toA, delta: delta, peer: ra}
	ra.peer = rb
	ea.Schedule(5*Nanosecond, ra, EventArg{I: n})
	p, err := NewParallel([]*Engine{ea, eb}, [][]*Mailbox{{toA}, {toB}}, look)
	if err != nil {
		t.Fatal(err)
	}
	p.Run()

	if got, want := len(ra.hops)+len(rb.hops), n+1; got != want {
		t.Fatalf("parallel fired %d hops, want %d", got, want)
	}
	for i, at := range sa.hops {
		if i >= len(ra.hops) || ra.hops[i] != at {
			t.Fatalf("partition A hop %d diverged from serial", i)
		}
	}
	for i, at := range sb.hops {
		if i >= len(rb.hops) || rb.hops[i] != at {
			t.Fatalf("partition B hop %d diverged from serial", i)
		}
	}
	if p.Now() != se.Now() {
		t.Fatalf("final time diverged: parallel %v, serial %v", p.Now(), se.Now())
	}
	if ea.Now() != eb.Now() {
		t.Fatalf("partition clocks unaligned after Run: %v vs %v", ea.Now(), eb.Now())
	}
	if p.Fired() != se.Fired() {
		t.Fatalf("fired diverged: parallel %d, serial %d", p.Fired(), se.Fired())
	}
}

func TestParallelRunForAlignsClocks(t *testing.T) {
	ea, eb := NewEngine(), NewEngine()
	fired := 0
	ea.At(3*Nanosecond, func() { fired++ })
	p, err := NewParallel([]*Engine{ea, eb}, [][]*Mailbox{nil, nil}, 5*Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	p.RunFor(100 * Nanosecond)
	if fired != 1 {
		t.Fatalf("event did not fire")
	}
	if ea.Now() != 100*Nanosecond || eb.Now() != 100*Nanosecond {
		t.Fatalf("clocks not aligned to deadline: %v / %v", ea.Now(), eb.Now())
	}
	// Second RunFor starts from the aligned clock.
	p.RunFor(50 * Nanosecond)
	if p.Now() != 150*Nanosecond {
		t.Fatalf("Now after second RunFor = %v, want 150ns", p.Now())
	}
}

func TestParallelRejectsZeroLookahead(t *testing.T) {
	e := NewEngine()
	for _, look := range []Time{0, -Nanosecond} {
		_, err := NewParallel([]*Engine{e}, [][]*Mailbox{nil}, look)
		if err == nil {
			t.Fatalf("lookahead %v accepted; a non-positive window livelocks", look)
		}
		if !strings.Contains(err.Error(), "lookahead") {
			t.Fatalf("error %q does not explain the lookahead constraint", err)
		}
	}
}

func TestParallelSampleHook(t *testing.T) {
	ea, eb := NewEngine(), NewEngine()
	tick := &serialRelay{delta: Microsecond}
	tick.peer = tick
	ea.Schedule(Microsecond, tick, EventArg{I: 9})
	p, err := NewParallel([]*Engine{ea, eb}, [][]*Mailbox{nil, nil}, 2*Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	var samples []Time
	p.SetSampleHook(3*Microsecond, func(now Time) { samples = append(samples, now) })
	p.Run()
	if len(samples) == 0 {
		t.Fatalf("sample hook never fired")
	}
	for i, s := range samples {
		if i > 0 && s <= samples[i-1] {
			t.Fatalf("samples not strictly increasing: %v", samples)
		}
	}
	// Events run to 10us; boundaries at 3, 6, 9us must all be covered.
	if samples[len(samples)-1] < 9*Microsecond {
		t.Fatalf("last sample %v before final boundary", samples[len(samples)-1])
	}
}

func TestParallelBarrierHookRuns(t *testing.T) {
	ea := NewEngine()
	done := 0
	ea.At(Nanosecond, func() { done++ })
	ea.At(20*Nanosecond, func() { done++ })
	p, err := NewParallel([]*Engine{ea}, [][]*Mailbox{nil}, 2*Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	barriers := 0
	p.SetBarrierHook(func() { barriers++ })
	p.Run()
	if done != 2 {
		t.Fatalf("events lost")
	}
	if barriers < 2 {
		t.Fatalf("barrier hook ran %d times, want one per window (>=2)", barriers)
	}
}

func TestWarpTo(t *testing.T) {
	e := NewEngine()
	e.WarpTo(42 * Nanosecond)
	if e.Now() != 42*Nanosecond {
		t.Fatalf("WarpTo did not move the clock")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("WarpTo with pending events must panic")
		}
	}()
	e.At(50*Nanosecond, func() {})
	e.WarpTo(60 * Nanosecond)
}

// postOnce records its firing times and, the first time it runs with a
// non-nil out, posts a single cross-partition event.
type postOnce struct {
	hops  []Time
	out   *Mailbox
	peer  Handler
	delta Time
}

func (h *postOnce) OnEvent(e *Engine, _ EventArg) {
	h.hops = append(h.hops, e.Now())
	if h.out != nil {
		h.out.Post(e, e.Now()+h.delta, h.peer, EventArg{})
		h.out = nil
	}
}

// TestParallelSnapBackExactDelivery is the adaptive-widening safety
// gate: with one partition idle, the busy partition's windows widen far
// past the lookahead (fast-forward), yet a cross-partition post made in
// the middle of such a widened window must still be delivered and
// executed at its exact virtual timestamp — the idle consumer's clock
// stays parked until the mail arrives, and the producer's own window
// snaps back to post time + 2·lookahead.
func TestParallelSnapBackExactDelivery(t *testing.T) {
	const (
		look  = 10 * Nanosecond
		delta = 13 * Nanosecond
		postT = 5 * Microsecond
	)
	ea, eb := NewEngine(), NewEngine()
	toB := &Mailbox{From: 0, To: 1}
	rec := &postOnce{}
	poster := &postOnce{out: toB, peer: rec, delta: delta}
	// A long train of partition-A-local work around the post instant,
	// so the post lands mid-fast-forward, not at a window edge.
	filler := &postOnce{}
	for i := 1; i <= 2000; i++ {
		ea.Schedule(Time(i)*3*Nanosecond, filler, EventArg{})
	}
	ea.Schedule(postT, poster, EventArg{})
	p, err := NewParallel([]*Engine{ea, eb}, [][]*Mailbox{nil, {toB}}, look)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetPairLookahead([][]Time{{0, look}, {look, 0}}); err != nil {
		t.Fatal(err)
	}
	st := NewParallelStats(2)
	p.SetStats(st)
	p.Run()

	if len(rec.hops) != 1 || rec.hops[0] != postT+delta {
		t.Fatalf("cross-partition event fired at %v, want exactly %v", rec.hops, postT+delta)
	}
	if len(filler.hops) != 2000 {
		t.Fatalf("filler fired %d of 2000 events", len(filler.hops))
	}
	if ea.Now() != eb.Now() {
		t.Fatalf("clocks unaligned after Run: %v vs %v", ea.Now(), eb.Now())
	}
	// The widening actually happened: with B idle, A's windows blow past
	// 2x lookahead instead of draining 10ns at a time...
	if st.wideWindows.Load() == 0 {
		t.Fatalf("no window widened past 2x lookahead; fast-forward lever inactive")
	}
	// ...and the dirty set flipped exactly the one posted mailbox over
	// the whole run, not one flip per mailbox per window.
	if got := st.dirtyFlips.Load(); got != 1 {
		t.Fatalf("dirty mailbox flips = %d, want exactly 1", got)
	}
}

// TestParallelPairLookaheadChain runs two independent bounce pairs over
// a three-partition line with very different cross-partition latencies
// (A-B fast, B-C slow, A-C only via composition) and checks the result
// against a single serial engine: the per-pair distance matrix must
// change scheduling, never outcomes.
func TestParallelPairLookaheadChain(t *testing.T) {
	const (
		lookAB = 10 * Nanosecond
		lookBC = 100 * Nanosecond
		dAB    = 13 * Nanosecond
		dBC    = 120 * Nanosecond
		nAB    = 30
		nBC    = 10
	)

	// Serial reference: both bounces interleaved on one engine.
	se := NewEngine()
	sa := &serialRelay{delta: dAB}
	sb := &serialRelay{delta: dAB, peer: sa}
	sa.peer = sb
	sb2 := &serialRelay{delta: dBC}
	sc := &serialRelay{delta: dBC, peer: sb2}
	sb2.peer = sc
	se.Schedule(5*Nanosecond, sa, EventArg{I: nAB})
	se.Schedule(7*Nanosecond, sb2, EventArg{I: nBC})
	se.Run()

	ea, eb, ec := NewEngine(), NewEngine(), NewEngine()
	toA := &Mailbox{From: 1, To: 0}
	toB := &Mailbox{From: 0, To: 1}
	toB2 := &Mailbox{From: 2, To: 1}
	toC := &Mailbox{From: 1, To: 2}
	ra := &relay{out: toB, delta: dAB}
	rb := &relay{out: toA, delta: dAB, peer: ra}
	ra.peer = rb
	rb2 := &relay{out: toC, delta: dBC}
	rc := &relay{out: toB2, delta: dBC, peer: rb2}
	rb2.peer = rc
	ea.Schedule(5*Nanosecond, ra, EventArg{I: nAB})
	eb.Schedule(7*Nanosecond, rb2, EventArg{I: nBC})
	p, err := NewParallel(
		[]*Engine{ea, eb, ec},
		[][]*Mailbox{{toA}, {toB, toB2}, {toC}},
		lookAB,
	)
	if err != nil {
		t.Fatal(err)
	}
	err = p.SetPairLookahead([][]Time{
		{0, lookAB, 0},
		{lookAB, 0, lookBC},
		{0, lookBC, 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Run()

	for name, pair := range map[string][2][]Time{
		"A":      {sa.hops, ra.hops},
		"B-fast": {sb.hops, rb.hops},
		"B-slow": {sb2.hops, rb2.hops},
		"C":      {sc.hops, rc.hops},
	} {
		want, got := pair[0], pair[1]
		if len(got) != len(want) {
			t.Fatalf("%s fired %d hops, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s hop %d at %v, serial at %v", name, i, got[i], want[i])
			}
		}
	}
	if p.Fired() != se.Fired() {
		t.Fatalf("fired diverged: parallel %d, serial %d", p.Fired(), se.Fired())
	}
	if p.Now() != se.Now() {
		t.Fatalf("final time diverged: parallel %v, serial %v", p.Now(), se.Now())
	}
}

// TestSetPairLookaheadValidation rejects malformed matrices.
func TestSetPairLookaheadValidation(t *testing.T) {
	p, err := NewParallel([]*Engine{NewEngine(), NewEngine()}, [][]*Mailbox{nil, nil}, 10*Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetPairLookahead([][]Time{{0, 10 * Nanosecond}}); err == nil {
		t.Error("short matrix accepted")
	}
	if err := p.SetPairLookahead([][]Time{{0, Nanosecond}, {Nanosecond, 0}}); err == nil {
		t.Error("pair lookahead below global lookahead accepted")
	}
}

package sim

import (
	"strings"
	"testing"
)

// relay bounces a token between two partitions through mailboxes,
// recording the virtual time of every hop. delta stands in for the link
// latency and must be >= the executor's lookahead for causal delivery.
type relay struct {
	out   *Mailbox
	peer  *relay
	delta Time
	hops  []Time
}

func (r *relay) OnEvent(e *Engine, arg EventArg) {
	r.hops = append(r.hops, e.Now())
	if arg.I > 0 {
		r.out.Post(e, e.Now()+r.delta, r.peer, EventArg{I: arg.I - 1})
	}
}

// serialRelay is the single-engine reference for the same bounce chain.
type serialRelay struct {
	peer  *serialRelay
	delta Time
	hops  []Time
}

func (r *serialRelay) OnEvent(e *Engine, arg EventArg) {
	r.hops = append(r.hops, e.Now())
	if arg.I > 0 {
		e.ScheduleAfter(r.delta, r.peer, EventArg{I: arg.I - 1})
	}
}

func TestParallelMatchesSerialRelay(t *testing.T) {
	const (
		look  = 10 * Nanosecond
		delta = 13 * Nanosecond // deliberately not a multiple of look
		n     = 40
	)

	// Serial reference.
	se := NewEngine()
	sa := &serialRelay{delta: delta}
	sb := &serialRelay{delta: delta, peer: sa}
	sa.peer = sb
	se.Schedule(5*Nanosecond, sa, EventArg{I: n})
	se.Run()

	// Two partitions, one mailbox each way.
	ea, eb := NewEngine(), NewEngine()
	toA, toB := &Mailbox{}, &Mailbox{}
	ra := &relay{out: toB, delta: delta}
	rb := &relay{out: toA, delta: delta, peer: ra}
	ra.peer = rb
	ea.Schedule(5*Nanosecond, ra, EventArg{I: n})
	p, err := NewParallel([]*Engine{ea, eb}, [][]*Mailbox{{toA}, {toB}}, look)
	if err != nil {
		t.Fatal(err)
	}
	p.Run()

	if got, want := len(ra.hops)+len(rb.hops), n+1; got != want {
		t.Fatalf("parallel fired %d hops, want %d", got, want)
	}
	for i, at := range sa.hops {
		if i >= len(ra.hops) || ra.hops[i] != at {
			t.Fatalf("partition A hop %d diverged from serial", i)
		}
	}
	for i, at := range sb.hops {
		if i >= len(rb.hops) || rb.hops[i] != at {
			t.Fatalf("partition B hop %d diverged from serial", i)
		}
	}
	if p.Now() != se.Now() {
		t.Fatalf("final time diverged: parallel %v, serial %v", p.Now(), se.Now())
	}
	if ea.Now() != eb.Now() {
		t.Fatalf("partition clocks unaligned after Run: %v vs %v", ea.Now(), eb.Now())
	}
	if p.Fired() != se.Fired() {
		t.Fatalf("fired diverged: parallel %d, serial %d", p.Fired(), se.Fired())
	}
}

func TestParallelRunForAlignsClocks(t *testing.T) {
	ea, eb := NewEngine(), NewEngine()
	fired := 0
	ea.At(3*Nanosecond, func() { fired++ })
	p, err := NewParallel([]*Engine{ea, eb}, [][]*Mailbox{nil, nil}, 5*Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	p.RunFor(100 * Nanosecond)
	if fired != 1 {
		t.Fatalf("event did not fire")
	}
	if ea.Now() != 100*Nanosecond || eb.Now() != 100*Nanosecond {
		t.Fatalf("clocks not aligned to deadline: %v / %v", ea.Now(), eb.Now())
	}
	// Second RunFor starts from the aligned clock.
	p.RunFor(50 * Nanosecond)
	if p.Now() != 150*Nanosecond {
		t.Fatalf("Now after second RunFor = %v, want 150ns", p.Now())
	}
}

func TestParallelRejectsZeroLookahead(t *testing.T) {
	e := NewEngine()
	for _, look := range []Time{0, -Nanosecond} {
		_, err := NewParallel([]*Engine{e}, [][]*Mailbox{nil}, look)
		if err == nil {
			t.Fatalf("lookahead %v accepted; a non-positive window livelocks", look)
		}
		if !strings.Contains(err.Error(), "lookahead") {
			t.Fatalf("error %q does not explain the lookahead constraint", err)
		}
	}
}

func TestParallelSampleHook(t *testing.T) {
	ea, eb := NewEngine(), NewEngine()
	tick := &serialRelay{delta: Microsecond}
	tick.peer = tick
	ea.Schedule(Microsecond, tick, EventArg{I: 9})
	p, err := NewParallel([]*Engine{ea, eb}, [][]*Mailbox{nil, nil}, 2*Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	var samples []Time
	p.SetSampleHook(3*Microsecond, func(now Time) { samples = append(samples, now) })
	p.Run()
	if len(samples) == 0 {
		t.Fatalf("sample hook never fired")
	}
	for i, s := range samples {
		if i > 0 && s <= samples[i-1] {
			t.Fatalf("samples not strictly increasing: %v", samples)
		}
	}
	// Events run to 10us; boundaries at 3, 6, 9us must all be covered.
	if samples[len(samples)-1] < 9*Microsecond {
		t.Fatalf("last sample %v before final boundary", samples[len(samples)-1])
	}
}

func TestParallelBarrierHookRuns(t *testing.T) {
	ea := NewEngine()
	done := 0
	ea.At(Nanosecond, func() { done++ })
	ea.At(20*Nanosecond, func() { done++ })
	p, err := NewParallel([]*Engine{ea}, [][]*Mailbox{nil}, 2*Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	barriers := 0
	p.SetBarrierHook(func() { barriers++ })
	p.Run()
	if done != 2 {
		t.Fatalf("events lost")
	}
	if barriers < 2 {
		t.Fatalf("barrier hook ran %d times, want one per window (>=2)", barriers)
	}
}

func TestWarpTo(t *testing.T) {
	e := NewEngine()
	e.WarpTo(42 * Nanosecond)
	if e.Now() != 42*Nanosecond {
		t.Fatalf("WarpTo did not move the clock")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("WarpTo with pending events must panic")
		}
	}()
	e.At(50*Nanosecond, func() {})
	e.WarpTo(60 * Nanosecond)
}

package sim

import "sync/atomic"

// ParallelStats accounts for where the parallel executor's wall time
// goes: per-partition busy time and events executed, barrier wait (the
// gap between a partition finishing its window and the slowest
// partition finishing), window occupancy, the coordinator's serial
// sections, and the cross-partition mailbox traffic matrix. It answers
// the question BENCH_parallel.json raises — why speedup ≤ 1.0 — by
// separating load imbalance from barrier overhead from mailbox chatter.
//
// All cumulative fields are atomics so an HTTP scrape may read a
// consistent-enough summary mid-run; the per-window scratch slices are
// touched only by the worker that owns the slot and by the coordinator
// after the worker's done message (channel happens-before), so they
// need no synchronization and cost workers nothing but two clock reads
// per window.
type ParallelStats struct {
	n int

	// Per-window scratch, reset by the coordinator before dispatch and
	// written by each worker during its window.
	winBusy   []int64 // wall ns inside runEvents this window
	winEvents []uint64

	// Cumulative per-partition accounting.
	busy    []atomic.Int64 // wall ns executing events
	barrier []atomic.Int64 // wall ns waiting for the window's slowest partition
	events  []atomic.Uint64
	activeW []atomic.Uint64 // windows in which the partition had work

	windows atomic.Uint64
	span    atomic.Int64 // sum over windows of the slowest partition's busy ns
	serial  atomic.Int64 // coordinator serial-section wall ns

	mail []atomic.Uint64 // n*n mailbox posts, row = producer partition

	// Window-geometry accounting for the adaptive widening levers:
	// dirtyFlips counts mailbox flips actually performed (vs the n²
	// flips per window a full matrix scan would pay), widthSum the sum
	// of window widths in virtual ps, wideWindows the windows widened
	// past 2× the global lookahead, widthHist a log2-ps histogram of
	// window widths (bucket k = widths in [2^(k-1), 2^k) ps).
	dirtyFlips   atomic.Uint64
	widthSum     atomic.Int64
	widthSamples atomic.Uint64
	wideWindows  atomic.Uint64
	widthHist    [65]atomic.Uint64

	// Partition-cut description, set once at setup by whoever derived
	// the partitions; not touched by the run loop.
	cutLinks    int
	cutWeight   float64
	partitioner string
}

// NewParallelStats sizes the accounting for n partitions.
func NewParallelStats(n int) *ParallelStats {
	return &ParallelStats{
		n:         n,
		winBusy:   make([]int64, n),
		winEvents: make([]uint64, n),
		busy:      make([]atomic.Int64, n),
		barrier:   make([]atomic.Int64, n),
		events:    make([]atomic.Uint64, n),
		activeW:   make([]atomic.Uint64, n),
		mail:      make([]atomic.Uint64, n*n),
	}
}

// addMail records cnt cross-partition events published from partition
// `from` to partition `to`. Coordinator only (called at mailbox flip).
func (s *ParallelStats) addMail(from, to, cnt int) {
	if from < 0 || from >= s.n || to < 0 || to >= s.n {
		return
	}
	s.mail[from*s.n+to].Add(uint64(cnt))
}

// SetCut records how the partition cut was derived: the partitioner's
// name, the number of cross-partition links, and their total affinity
// weight. Setup time only.
func (s *ParallelStats) SetCut(partitioner string, links int, weight float64) {
	s.partitioner = partitioner
	s.cutLinks = links
	s.cutWeight = weight
}

// noteWidth folds one window's width (virtual ps) into the geometry
// accounting. Coordinator only, once per dispatched window. Unbounded
// fast-forward windows (width pinned at maxTime) land in the top
// histogram bucket but stay out of the mean, which would otherwise
// overflow and say nothing.
func (s *ParallelStats) noteWidth(w, look Time) {
	s.widthHist[widthBucket(w)].Add(1)
	if w > 2*look {
		s.wideWindows.Add(1)
	}
	if w < maxTime/2 {
		s.widthSum.Add(int64(w))
		s.widthSamples.Add(1)
	}
}

// resetWindow clears the per-window scratch slots. Coordinator only,
// before dispatching a window.
func (s *ParallelStats) resetWindow() {
	for i := range s.winBusy {
		s.winBusy[i] = 0
		s.winEvents[i] = 0
	}
}

// noteWindow folds one completed window into the cumulative accounting.
// Coordinator only, after every dispatched worker has reported done.
func (s *ParallelStats) noteWindow(active []bool) {
	var max int64
	for i, a := range active {
		if a && s.winBusy[i] > max {
			max = s.winBusy[i]
		}
	}
	s.windows.Add(1)
	s.span.Add(max)
	for i, a := range active {
		if !a {
			continue
		}
		b := s.winBusy[i]
		s.busy[i].Add(b)
		s.barrier[i].Add(max - b)
		s.events[i].Add(s.winEvents[i])
		s.activeW[i].Add(1)
	}
}

// PartitionSummary is one partition's share of a run.
type PartitionSummary struct {
	Partition     int     `json:"partition"`
	Events        uint64  `json:"events"`
	BusyMS        float64 `json:"busy_ms"`
	BarrierWaitMS float64 `json:"barrier_wait_ms"`
	ActiveWindows uint64  `json:"active_windows"`
}

// ParallelSummary is the renderable form of ParallelStats. Wall-clock
// quantities are nondeterministic by nature; determinism gates must
// exclude them.
type ParallelSummary struct {
	Partitions []PartitionSummary `json:"partitions"`
	Windows    uint64             `json:"windows"`
	// SpanMS is the critical-path wall time: per window, the slowest
	// partition's busy time, summed.
	SpanMS float64 `json:"span_ms"`
	// SerialMS is wall time in the coordinator's serial sections
	// (mailbox flips, horizon search, barrier hooks are separate).
	SerialMS float64 `json:"serial_ms"`
	// Occupancy is total busy time over span × partitions: 1.0 means
	// every partition worked the whole window, every window.
	Occupancy float64 `json:"occupancy"`
	// Imbalance is max over mean cumulative partition busy time; 1.0 is
	// a perfectly balanced cut.
	Imbalance float64 `json:"imbalance"`
	// MailboxPosts[i][j] counts cross-partition events partition i
	// published toward partition j.
	MailboxPosts [][]uint64 `json:"mailbox_posts"`

	// Partitioner, CutLinks and CutWeight describe how the partition
	// cut was derived (see ParallelStats.SetCut); zero values when the
	// deriving layer did not report them.
	Partitioner string  `json:"partitioner,omitempty"`
	CutLinks    int     `json:"cut_links,omitempty"`
	CutWeight   float64 `json:"cut_weight,omitempty"`

	// DirtyFlips counts mailbox flips the coordinator performed; a full
	// matrix scan would have paid Windows × Partitions² of them.
	DirtyFlips uint64 `json:"dirty_flips"`
	// WideWindows counts windows adaptively widened past twice the
	// global lookahead; MeanWindowNs is the mean width of bounded
	// windows in virtual nanoseconds.
	WideWindows  uint64  `json:"wide_windows"`
	MeanWindowNs float64 `json:"mean_window_ns"`
	// WindowWidthHist is the log2 histogram of window widths: bucket
	// UpToNs is the inclusive upper bound in virtual ns (the last
	// bucket collects unbounded fast-forward windows).
	WindowWidthHist []WindowWidthBucket `json:"window_width_hist,omitempty"`
}

// WindowWidthBucket is one populated bucket of the window-width
// histogram.
type WindowWidthBucket struct {
	UpToNs float64 `json:"up_to_ns"`
	Count  uint64  `json:"count"`
}

const nsPerMS = 1e6

// Summary renders the current accounting. Safe to call concurrently
// with a run; mid-run reads see a consistent-enough snapshot (each
// field individually atomic).
func (s *ParallelStats) Summary() ParallelSummary {
	out := ParallelSummary{
		Windows:  s.windows.Load(),
		SpanMS:   float64(s.span.Load()) / nsPerMS,
		SerialMS: float64(s.serial.Load()) / nsPerMS,
	}
	var totalBusy, maxBusy int64
	for i := 0; i < s.n; i++ {
		b := s.busy[i].Load()
		totalBusy += b
		if b > maxBusy {
			maxBusy = b
		}
		out.Partitions = append(out.Partitions, PartitionSummary{
			Partition:     i,
			Events:        s.events[i].Load(),
			BusyMS:        float64(b) / nsPerMS,
			BarrierWaitMS: float64(s.barrier[i].Load()) / nsPerMS,
			ActiveWindows: s.activeW[i].Load(),
		})
	}
	if mean := float64(totalBusy) / float64(s.n); mean > 0 {
		out.Imbalance = float64(maxBusy) / mean
	}
	if span := s.span.Load(); span > 0 {
		out.Occupancy = float64(totalBusy) / (float64(span) * float64(s.n))
	}
	out.MailboxPosts = make([][]uint64, s.n)
	for i := 0; i < s.n; i++ {
		row := make([]uint64, s.n)
		for j := 0; j < s.n; j++ {
			row[j] = s.mail[i*s.n+j].Load()
		}
		out.MailboxPosts[i] = row
	}
	out.Partitioner = s.partitioner
	out.CutLinks = s.cutLinks
	out.CutWeight = s.cutWeight
	out.DirtyFlips = s.dirtyFlips.Load()
	out.WideWindows = s.wideWindows.Load()
	if n := s.widthSamples.Load(); n > 0 {
		out.MeanWindowNs = float64(s.widthSum.Load()) / float64(n) / 1e3
	}
	for k := range s.widthHist {
		c := s.widthHist[k].Load()
		if c == 0 {
			continue
		}
		upNs := float64(maxTime) / 1e3
		if k < 63 {
			upNs = float64(uint64(1)<<uint(k)) / 1e3
		}
		out.WindowWidthHist = append(out.WindowWidthHist, WindowWidthBucket{UpToNs: upNs, Count: c})
	}
	return out
}

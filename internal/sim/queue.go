package sim

import (
	"math/bits"
	"slices"
)

// This file implements the engine's event queue: a two-tier ladder queue
// over an index-addressed event arena, built so the steady-state
// schedule/fire cycle performs zero heap allocations.
//
// Layout:
//
//   - The *arena* stores every pending event's payload (Handler + arg)
//     in a flat slice, addressed by int32 ref and recycled through an
//     intrusive free list. Scheduling never boxes through interface{}
//     the way container/heap did, and a handler that reschedules itself
//     reuses the slot it just vacated.
//
//   - The *near rung* is an array of time buckets, each bucketWidth
//     picoseconds wide, covering a window starting at the current
//     bucket. Buckets are filled unsorted and sorted lazily (descending,
//     popped from the tail) only when the drain cursor reaches them. An
//     occupancy bitmap makes skipping empty buckets O(1) per word, so
//     sparse schedules don't pay a linear scan.
//
//   - The *far heap* is a 4-ary min-heap on (time, stamp, seq) holding
//     events beyond the near window. When the near rung drains, the
//     window jumps to the earliest far event and everything inside the
//     new window migrates into buckets.
//
// Ordering contract: events fire in non-decreasing (at, sat, pri, seq)
// order, where sat is the virtual time of the Schedule call and pri is a
// lineage priority inherited from the event whose handler made that call
// (root events — scheduled from outside any handler — draw fresh
// priorities from a counter in scheduling order). On a single engine sat
// is non-decreasing in seq (the clock never rewinds) and pri order
// coincides with scheduling order at any (at, sat) tie, so the order is
// identical to the seed container/heap's (at, seq) — which is what the
// old-vs-new determinism suite pins down. The extra keys exist for the
// parallel executor: a cross-partition event arrives through a mailbox
// with a late local seq, and its sender-side stamp and inherited
// priority are what slot it into the same same-timestamp arbitration
// position a serial run would have given it.

const (
	// bucketShift sets the bucket width: 2^9 ps = 512 ps, finer than one
	// HT800 16-bit transfer quantum, so back-to-back link events land in
	// distinct buckets while a whole packet's pipeline (tens of ns) still
	// fits comfortably inside one near window.
	bucketShift = 9
	bucketWidth = Time(1) << bucketShift
	numBuckets  = 1024
	// insertionSortMax bounds the hand-rolled insertion sort; larger
	// buckets (mass barriers at one instant) fall back to slices.SortFunc.
	insertionSortMax = 32
)

// entry is one queued event's ordering key plus its arena ref. Entries
// are what move through buckets and the far heap; the 24-byte struct is
// self-contained so sorting and sifting never chase the arena.
type entry struct {
	at  Time
	sat Time   // schedule stamp: virtual time of the Schedule call
	pri uint64 // lineage priority inherited from the scheduling event
	seq uint64
	ref int32
}

// entryLess is the strict (time, stamp, priority, seq) order.
func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.sat != b.sat {
		return a.sat < b.sat
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// slot is one arena cell. next links the free list (ref+1 encoded, so
// the zero value means "end of list" and the zero Engine works).
type slot struct {
	h    Handler
	arg  EventArg
	next int32
}

// ladder is the queue itself. The zero value is ready to use.
type ladder struct {
	arena []slot
	free  int32 // head of the slot free list, ref+1 encoded; 0 = empty

	n     int // total pending events (near + far)
	nearN int // events currently in buckets

	buckets [numBuckets][]entry
	occ     [numBuckets / 64]uint64 // per-bucket non-empty bits
	cur     int                     // drain cursor: current bucket index
	curT0   Time                    // start time of bucket cur
	sorted  bool                    // whether buckets[cur] is sorted

	far farHeap
}

// alloc claims an arena slot for (h, arg) and returns its ref.
func (l *ladder) alloc(h Handler, arg EventArg) int32 {
	if l.free != 0 {
		ref := l.free - 1
		s := &l.arena[ref]
		l.free = s.next
		s.h, s.arg, s.next = h, arg, 0
		return ref
	}
	l.arena = append(l.arena, slot{h: h, arg: arg})
	return int32(len(l.arena) - 1)
}

// release frees a slot and returns its payload. The slot is cleared so
// the arena never pins a dead handler or packet for the GC.
func (l *ladder) release(ref int32) (Handler, EventArg) {
	s := &l.arena[ref]
	h, arg := s.h, s.arg
	s.h, s.arg = nil, EventArg{}
	s.next = l.free
	l.free = ref + 1
	return h, arg
}

// insert queues an event. at may precede curT0 (an event scheduled for
// "now" after the cursor advanced past its bucket): it clamps into the
// current bucket, where the (at, seq) sort still fires it first.
func (l *ladder) insert(at, sat Time, pri, seq uint64, ref int32) {
	if l.n == 0 {
		// Empty queue: re-anchor the window at this event so a long idle
		// gap doesn't strand it in the far heap.
		l.cur = 0
		l.curT0 = at
		l.sorted = false
	}
	l.n++
	idx := l.cur
	if at >= l.curT0 {
		d := int((at - l.curT0) >> bucketShift)
		if d >= numBuckets-l.cur {
			l.far.push(entry{at: at, sat: sat, pri: pri, seq: seq, ref: ref})
			return
		}
		idx = l.cur + d
	}
	l.nearN++
	b := &l.buckets[idx]
	if idx == l.cur && l.sorted && len(*b) > 0 {
		insertSorted(b, entry{at: at, sat: sat, pri: pri, seq: seq, ref: ref})
	} else {
		*b = append(*b, entry{at: at, sat: sat, pri: pri, seq: seq, ref: ref})
	}
	l.occ[idx>>6] |= 1 << (idx & 63)
}

// insertSorted places en into a descending-(at,seq) bucket.
func insertSorted(b *[]entry, en entry) {
	s := *b
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if entryLess(s[mid], en) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	s = append(s, entry{})
	copy(s[lo+1:], s[lo:])
	s[lo] = en
	*b = s
}

// position advances the drain cursor to the bucket holding the earliest
// pending event and sorts it. Callers must ensure l.n > 0.
func (l *ladder) position() {
	if l.nearN == 0 {
		l.refill()
	}
	if len(l.buckets[l.cur]) == 0 {
		l.advance()
	}
	if !l.sorted {
		b := l.buckets[l.cur]
		if len(b) <= insertionSortMax {
			for i := 1; i < len(b); i++ {
				for j := i; j > 0 && entryLess(b[j-1], b[j]); j-- {
					b[j-1], b[j] = b[j], b[j-1]
				}
			}
		} else {
			slices.SortFunc(b, func(x, y entry) int {
				if entryLess(x, y) {
					return 1
				}
				return -1
			})
		}
		l.sorted = true
	}
}

// advance moves the cursor to the next occupied bucket via the
// occupancy bitmap. Callers must ensure nearN > 0.
func (l *ladder) advance() {
	mask := ^uint64(0) << uint(l.cur&63)
	for w := l.cur >> 6; w < len(l.occ); w++ {
		if b := l.occ[w] & mask; b != 0 {
			idx := w<<6 + bits.TrailingZeros64(b)
			l.curT0 += Time(idx-l.cur) << bucketShift
			l.cur = idx
			l.sorted = false
			return
		}
		mask = ^uint64(0)
	}
	panic("sim: ladder occupancy empty with events pending")
}

// refill jumps the near window to the earliest far event and migrates
// every far event inside the new window into buckets. Callers must
// ensure the far heap is non-empty.
func (l *ladder) refill() {
	l.cur = 0
	l.curT0 = l.far[0].at
	l.sorted = false
	end := l.curT0 + numBuckets<<bucketShift
	for len(l.far) > 0 && l.far[0].at < end {
		e := l.far.pop()
		d := int((e.at - l.curT0) >> bucketShift)
		l.buckets[d] = append(l.buckets[d], e)
		l.occ[d>>6] |= 1 << (d & 63)
		l.nearN++
	}
}

// pop removes and returns the earliest (at, sat, pri, seq) event.
func (l *ladder) pop() (entry, bool) {
	if l.n == 0 {
		return entry{}, false
	}
	l.position()
	b := &l.buckets[l.cur]
	e := (*b)[len(*b)-1]
	*b = (*b)[:len(*b)-1]
	l.n--
	l.nearN--
	if len(*b) == 0 {
		l.occ[l.cur>>6] &^= 1 << (l.cur & 63)
	}
	return e, true
}

// peek returns the earliest pending event time without removing it.
func (l *ladder) peek() (Time, bool) {
	if l.n == 0 {
		return 0, false
	}
	l.position()
	b := l.buckets[l.cur]
	return b[len(b)-1].at, true
}

// farHeap is a 4-ary min-heap on (at, sat, pri, seq). Four-way fan-out halves the
// tree depth of a binary heap and keeps sift-down children in one cache
// line of entries.
type farHeap []entry

func (h *farHeap) push(e entry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entryLess(s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *farHeap) pop() entry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	// Sift down.
	i := 0
	for {
		c := i<<2 + 1
		if c >= len(s) {
			break
		}
		min := c
		hi := c + 4
		if hi > len(s) {
			hi = len(s)
		}
		for j := c + 1; j < hi; j++ {
			if entryLess(s[j], s[min]) {
				min = j
			}
		}
		if !entryLess(s[min], s[i]) {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

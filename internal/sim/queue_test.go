package sim

import (
	"testing"
	"testing/quick"
)

// recorder logs (time, tag) pairs as events fire; used to compare the
// ladder queue against the legacy heap event-for-event.
type recorder struct {
	log []firedAt
}

type firedAt struct {
	at  Time
	tag int64
}

func (r *recorder) OnEvent(e *Engine, arg EventArg) {
	r.log = append(r.log, firedAt{at: e.Now(), tag: arg.I})
}

func sameLog(a, b []firedAt) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Property: for any batch of scheduled events, the ladder queue fires
// them in exactly the same order as the seed container/heap queue.
func TestLadderMatchesLegacyOrderingProperty(t *testing.T) {
	f := func(delays []uint32) bool {
		newE, oldE := NewEngine(), NewLegacyEngine()
		newR, oldR := &recorder{}, &recorder{}
		for i, d := range delays {
			// Spread delays across bucket widths and past the near
			// window so the far heap and refill paths get exercised.
			at := Time(d) * Picosecond
			newE.Schedule(at, newR, EventArg{I: int64(i)})
			oldE.Schedule(at, oldR, EventArg{I: int64(i)})
		}
		newE.Run()
		oldE.Run()
		return sameLog(newR.log, oldR.log) &&
			newE.Now() == oldE.Now() &&
			newE.Fired() == oldE.Fired()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// chainTicker reschedules itself with a pseudo-random gap until its
// budget runs out, and occasionally spawns a sibling — a workload shaped
// like the simulator's own traffic (mostly near-future events with the
// odd far-future retrain), run identically on both queues.
type chainTicker struct {
	e      *Engine
	r      *Rand
	rec    *recorder
	budget int
	id     int64
}

func (c *chainTicker) OnEvent(e *Engine, arg EventArg) {
	c.rec.log = append(c.rec.log, firedAt{at: e.Now(), tag: c.id<<32 | arg.I})
	if c.budget <= 0 {
		return
	}
	c.budget--
	gap := Time(c.r.Intn(2000)) * Picosecond
	if c.r.Intn(50) == 0 {
		gap += 3 * Microsecond // jump past the near window
	}
	e.ScheduleAfter(gap, c, EventArg{I: arg.I + 1})
	if c.r.Intn(20) == 0 && c.budget > 0 {
		c.budget--
		sib := &chainTicker{e: e, r: c.r, rec: c.rec, budget: 0, id: c.id + 1000}
		e.ScheduleAfter(gap/2, sib, EventArg{})
	}
}

func runChainWorkload(e *Engine) *recorder {
	rec := &recorder{}
	r := NewRand(1234)
	for i := 0; i < 8; i++ {
		tk := &chainTicker{e: e, r: r, rec: rec, budget: 500, id: int64(i)}
		e.Schedule(Time(i)*Nanosecond, tk, EventArg{})
	}
	e.Run()
	return rec
}

func TestLadderMatchesLegacyOnChainedWorkload(t *testing.T) {
	newR := runChainWorkload(NewEngine())
	oldR := runChainWorkload(NewLegacyEngine())
	if len(newR.log) == 0 {
		t.Fatal("workload fired no events")
	}
	if !sameLog(newR.log, oldR.log) {
		t.Fatalf("ladder and legacy queues diverged: %d vs %d events",
			len(newR.log), len(oldR.log))
	}
}

// The ladder must re-anchor its window when the queue drains and the
// next event lands far in the future.
func TestLadderReanchorsAfterDrain(t *testing.T) {
	e := NewEngine()
	var got []Time
	fn := func() { got = append(got, e.Now()) }
	e.At(10*Nanosecond, fn)
	e.Run()
	e.At(5*Second, fn) // far beyond any near window from t=10ns
	e.At(5*Second+100*Picosecond, fn)
	e.Run()
	want := []Time{10 * Nanosecond, 5 * Second, 5*Second + 100*Picosecond}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

// Events scheduled for "now" after the cursor has advanced past their
// bucket boundary must still fire before everything later.
func TestLadderSchedulesAtNowAfterCursorAdvance(t *testing.T) {
	e := NewEngine()
	var got []int
	// First event fires mid-window, then schedules a same-time follow-up
	// and a slightly later one; a far event is already pending.
	e.At(700*Picosecond, func() {
		e.At(e.Now(), func() { got = append(got, 1) })
		e.At(e.Now()+1*Picosecond, func() { got = append(got, 2) })
	})
	e.At(10*Microsecond, func() { got = append(got, 3) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
}

func TestTypedScheduleDeliversArg(t *testing.T) {
	e := NewEngine()
	rec := &recorder{}
	type payload struct{ v int }
	p := &payload{v: 7}
	var gotPtr any
	e.Schedule(5*Nanosecond, handlerFunc(func(eng *Engine, arg EventArg) {
		gotPtr = arg.Ptr
		rec.log = append(rec.log, firedAt{at: eng.Now(), tag: arg.I})
	}), EventArg{Ptr: p, I: 42})
	e.Run()
	if len(rec.log) != 1 || rec.log[0].at != 5*Nanosecond || rec.log[0].tag != 42 {
		t.Fatalf("typed event log = %v", rec.log)
	}
	if gotPtr != p {
		t.Fatalf("arg.Ptr = %v, want %v", gotPtr, p)
	}
}

// handlerFunc lets tests write inline handlers.
type handlerFunc func(e *Engine, arg EventArg)

func (f handlerFunc) OnEvent(e *Engine, arg EventArg) { f(e, arg) }

func TestScheduleAfterNegativePanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("negative ScheduleAfter did not panic")
		}
	}()
	e.ScheduleAfter(-1, handlerFunc(func(*Engine, EventArg) {}), EventArg{})
}

func TestLegacyEngineSchedulingIntoPastPanics(t *testing.T) {
	e := NewLegacyEngine()
	e.At(10*Nanosecond, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling into the past did not panic")
			}
		}()
		e.At(5*Nanosecond, func() {})
	})
	e.Run()
}

// An armed probe whose wake time falls between the last event and the
// RunUntil deadline must fire on the final clock jump — at its exact
// wake time, not at the deadline the fast-forward lands on.
func TestRunUntilFiresProbeOnFinalClockJump(t *testing.T) {
	for _, mk := range []func() *Engine{NewEngine, NewLegacyEngine} {
		e := mk()
		var wakes []Time
		e.SetProbe(func(now Time) Time {
			wakes = append(wakes, now)
			return now + 100*Nanosecond
		}, 50*Nanosecond)
		e.At(10*Nanosecond, func() {})
		e.RunUntil(80 * Nanosecond)
		// The 10ns event is before the 50ns wake; the jump to the 80ns
		// deadline crosses the wake, which fires exactly at 50ns.
		if len(wakes) != 1 || wakes[0] != 50*Nanosecond {
			t.Fatalf("wakes after first RunUntil = %v, want [50ns]", wakes)
		}
		if e.Now() != 80*Nanosecond {
			t.Fatalf("Now() = %v, want 80ns", e.Now())
		}
		// Probe re-armed at 150ns: an event-free run to 200ns fires it
		// at 150ns on the deadline jump.
		e.RunUntil(200 * Nanosecond)
		if len(wakes) != 2 || wakes[1] != 150*Nanosecond {
			t.Fatalf("wakes after second RunUntil = %v, want [50ns 150ns]", wakes)
		}
		if e.Now() != 200*Nanosecond {
			t.Fatalf("Now() = %v, want 200ns", e.Now())
		}
	}
}

func TestRunUntilProbeDisarmOnFinalJump(t *testing.T) {
	e := NewEngine()
	calls := 0
	e.SetProbe(func(now Time) Time {
		calls++
		return 0 // disarm
	}, 50*Nanosecond)
	e.RunUntil(100 * Nanosecond)
	e.RunUntil(300 * Nanosecond)
	if calls != 1 {
		t.Fatalf("disarmed probe fired %d times, want 1", calls)
	}
}

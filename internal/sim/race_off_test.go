//go:build !race

package sim

// raceEnabled lets allocation-count assertions skip under -race, where
// the instrumentation changes per-op allocation behavior. The workloads
// themselves still run so -race covers the same code paths.
const raceEnabled = false

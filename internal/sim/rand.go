package sim

// Rand is a small deterministic PRNG (xorshift64*), used wherever a model
// needs jitter or randomized workloads. It is seeded explicitly so every
// simulation run is reproducible; math/rand's global state is never used.
type Rand struct {
	state uint64
}

// NewRand returns a PRNG seeded with seed. A zero seed is remapped to a
// fixed non-zero constant because xorshift has an all-zeros fixed point.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545F4914F6CDD1D
}

// Intn returns a pseudo-random int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a pseudo-random float in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Jitter returns base scaled by a random factor in [1-frac, 1+frac].
func (r *Rand) Jitter(base Time, frac float64) Time {
	if frac <= 0 {
		return base
	}
	f := 1 + frac*(2*r.Float64()-1)
	return Time(float64(base) * f)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

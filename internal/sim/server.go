package sim

// Server models a work-conserving FIFO resource with a single service
// channel: a link serializer, a DRAM controller port, a NIC DMA engine.
// A job arriving at time a with service demand s starts at
// max(a, freeAt) and completes s later. Server keeps only the scalar
// horizon, so it is O(1) per job and exact for FIFO service.
type Server struct {
	freeAt Time
	busy   Time // accumulated service time, for utilization accounting
	jobs   uint64
}

// Schedule books a job arriving at 'arrival' needing 'service' time.
// It returns the start and completion times and advances the horizon.
func (s *Server) Schedule(arrival, service Time) (start, done Time) {
	if service < 0 {
		panic("sim: negative service time")
	}
	start = arrival
	if s.freeAt > start {
		start = s.freeAt
	}
	done = start + service
	s.freeAt = done
	s.busy += service
	s.jobs++
	return start, done
}

// FreeAt returns the earliest time a new arrival could begin service.
func (s *Server) FreeAt() Time { return s.freeAt }

// BusyTime returns the total service time booked so far.
func (s *Server) BusyTime() Time { return s.busy }

// Jobs returns the number of jobs booked so far.
func (s *Server) Jobs() uint64 { return s.jobs }

// Utilization returns busy time divided by the observation horizon.
func (s *Server) Utilization(horizon Time) float64 {
	if horizon <= 0 {
		return 0
	}
	return float64(s.busy) / float64(horizon)
}

// Reset clears the server back to an idle state at time zero.
func (s *Server) Reset() { *s = Server{} }

package sim

import "testing"

func TestServerFIFOSchedule(t *testing.T) {
	var s Server
	start, done := s.Schedule(10*Nanosecond, 5*Nanosecond)
	if start != 10*Nanosecond || done != 15*Nanosecond {
		t.Fatalf("first job start/done = %v/%v, want 10ns/15ns", start, done)
	}
	// Arrives while busy: queued behind the horizon.
	start, done = s.Schedule(12*Nanosecond, 5*Nanosecond)
	if start != 15*Nanosecond || done != 20*Nanosecond {
		t.Fatalf("queued job start/done = %v/%v, want 15ns/20ns", start, done)
	}
	if s.Jobs() != 2 || s.BusyTime() != 10*Nanosecond {
		t.Fatalf("jobs/busy = %d/%v, want 2/10ns", s.Jobs(), s.BusyTime())
	}
}

// Regression: Utilization over a zero or negative horizon must report 0,
// not +Inf/NaN or a negative ratio — monitoring dashboards divide by
// whatever horizon they are handed.
func TestServerUtilizationZeroHorizonGuard(t *testing.T) {
	var s Server
	s.Schedule(0, 8*Nanosecond)
	if u := s.Utilization(0); u != 0 {
		t.Fatalf("Utilization(0) = %v, want 0", u)
	}
	if u := s.Utilization(-5 * Nanosecond); u != 0 {
		t.Fatalf("Utilization(-5ns) = %v, want 0", u)
	}
	if u := s.Utilization(16 * Nanosecond); u != 0.5 {
		t.Fatalf("Utilization(16ns) = %v, want 0.5", u)
	}
}

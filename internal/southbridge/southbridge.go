// Package southbridge models the IO hub hanging off the BSP's
// non-coherent link: the chip that provides the BIOS flash ROM the
// firmware executes from during cache-as-RAM (CAR) mode. The paper's
// boot sequence notes that in CAR mode "the system is comparatively
// slow as the performance is limited by the read bandwidth of the ROM"
// (§V) — this device supplies that bandwidth limit, answering sized
// reads from a flash image with SPI-class latency.
package southbridge

import (
	"fmt"

	"repro/internal/ht"
	"repro/internal/sim"
)

// ROMBase is the global physical address of the BIOS flash window: the
// classic top-of-4GB reset-vector region.
const ROMBase uint64 = 0xFFFF_0000

// ROMWindow is the size of the flash window (one MMIO granule).
const ROMWindow = 64 << 10

// Params configure the device.
type Params struct {
	// ROMAccess is the latency of one sized read from flash (SPI serial
	// interface): ~3 us per 64-byte access = ~20 MB/s.
	ROMAccess sim.Time
}

// DefaultParams models a typical LPC/SPI flash part.
func DefaultParams() Params {
	return Params{ROMAccess: 3 * sim.Microsecond}
}

// Device is one southbridge with its flash ROM.
type Device struct {
	eng  *sim.Engine
	par  Params
	rom  []byte
	port *ht.Port
	srv  sim.Server

	reads uint64
}

// New creates a southbridge holding the given flash image (max 64 KB).
func New(eng *sim.Engine, image []byte, par Params) (*Device, error) {
	if len(image) > ROMWindow {
		return nil, fmt.Errorf("southbridge: %d-byte image exceeds the %d-byte flash window",
			len(image), ROMWindow)
	}
	rom := make([]byte, ROMWindow)
	copy(rom, image)
	return &Device{eng: eng, par: par, rom: rom}, nil
}

// SetEngine rebinds the device onto a partition engine; called while
// quiescent, before a parallel run starts.
func (d *Device) SetEngine(e *sim.Engine) { d.eng = e }

// AttachTo connects the device to its side of the non-coherent link and
// starts answering reads.
func (d *Device) AttachTo(p *ht.Port) {
	d.port = p
	p.SetSink(func(pkt *ht.Packet, done func()) { d.handle(pkt, done) })
}

// Reads returns how many sized reads the flash has served.
func (d *Device) Reads() uint64 { return d.reads }

// ROM exposes the flash contents (tests compare fetched bytes).
func (d *Device) ROM() []byte { return d.rom }

func (d *Device) handle(pkt *ht.Packet, done func()) {
	switch pkt.Cmd {
	case ht.CmdRdSized:
		off := pkt.Addr - ROMBase
		n := (int(pkt.Count) + 1) * ht.DwordBytes
		if pkt.Addr < ROMBase || off+uint64(n) > ROMWindow {
			done() // master abort: outside the flash window
			return
		}
		d.reads++
		_, at := d.srv.Schedule(d.eng.Now(), d.par.ROMAccess)
		requester := pkt.SrcNode
		tag := pkt.SrcTag
		data := append([]byte(nil), d.rom[off:off+uint64(n)]...)
		d.eng.At(at, func() {
			resp, err := ht.NewReadResponse(tag, data)
			if err != nil {
				return
			}
			resp.DstNode = requester
			_ = d.port.Send(resp)
		})
		done()
	case ht.CmdWrPosted, ht.CmdWrNP, ht.CmdBroadcast, ht.CmdFence, ht.CmdFlush:
		// Legacy IO writes and system-management traffic are absorbed.
		done()
	default:
		done()
	}
}

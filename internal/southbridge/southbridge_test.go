package southbridge

import (
	"bytes"
	"testing"

	"repro/internal/ht"
	"repro/internal/sim"
)

func device(t *testing.T, image []byte) (*sim.Engine, *ht.Link, *Device) {
	t.Helper()
	eng := sim.NewEngine()
	l := ht.NewLink(eng, ht.DefaultLinkConfig(ht.ClassProcessor, ht.ClassIODevice))
	l.ColdReset()
	eng.Run()
	d, err := New(eng, image, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	d.AttachTo(l.B())
	return eng, l, d
}

func TestROMReadRoundTrip(t *testing.T) {
	image := make([]byte, 256)
	for i := range image {
		image[i] = byte(i ^ 0xA5)
	}
	eng, l, d := device(t, image)

	var got []byte
	l.A().SetSink(func(p *ht.Packet, done func()) {
		if p.Cmd == ht.CmdRdResp {
			got = p.Data
		}
		done()
	})
	rd, err := ht.NewRead(ROMBase+64, 64, 5)
	if err != nil {
		t.Fatal(err)
	}
	rd.SrcNode = 7
	if err := l.A().Send(rd); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if !bytes.Equal(got, image[64:128]) {
		t.Fatalf("ROM read returned %v", got[:8])
	}
	if d.Reads() != 1 {
		t.Errorf("reads = %d", d.Reads())
	}
}

func TestROMReadLatencyIsFlashBound(t *testing.T) {
	eng, l, _ := device(t, make([]byte, 4096))
	var at sim.Time
	l.A().SetSink(func(p *ht.Packet, done func()) {
		at = eng.Now()
		done()
	})
	rd, _ := ht.NewRead(ROMBase, 64, 1)
	start := eng.Now()
	_ = l.A().Send(rd)
	eng.Run()
	if lat := at - start; lat < DefaultParams().ROMAccess {
		t.Errorf("ROM read completed in %v, below the %v flash access time", lat, DefaultParams().ROMAccess)
	}
}

func TestOutOfWindowReadAborts(t *testing.T) {
	eng, l, d := device(t, make([]byte, 64))
	responded := false
	l.A().SetSink(func(p *ht.Packet, done func()) {
		responded = true
		done()
	})
	rd, _ := ht.NewRead(ROMBase-64, 64, 2) // below the window
	_ = l.A().Send(rd)
	eng.Run()
	if responded {
		t.Error("out-of-window read got a response")
	}
	if d.Reads() != 0 {
		t.Errorf("reads = %d", d.Reads())
	}
}

func TestWritesAbsorbed(t *testing.T) {
	eng, l, _ := device(t, make([]byte, 64))
	w, _ := ht.NewPostedWrite(ROMBase, []byte{1, 2, 3, 4})
	if err := l.A().Send(w); err != nil {
		t.Fatal(err)
	}
	eng.Run() // must quiesce without faults
}

func TestOversizedImageRejected(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, make([]byte, ROMWindow+1), DefaultParams()); err == nil {
		t.Error("oversized flash image accepted")
	}
}

package stats

import (
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// BenchMeta stamps a result JSON with enough context to judge the
// numbers later: which commit produced them and how much real hardware
// the run had. A parallel-speedup figure from a 1-CPU CI container
// means something very different from the same figure on a 16-core
// workstation, and the only honest way to compare archived result
// files is to record that alongside the result.
type BenchMeta struct {
	Commit      string    `json:"commit"`
	GoVersion   string    `json:"go_version"`
	GOMAXPROCS  int       `json:"gomaxprocs"`
	NumCPU      int       `json:"num_cpu"`
	GeneratedAt time.Time `json:"generated_at"`
}

// NewBenchMeta captures the current toolchain, hardware and commit.
func NewBenchMeta() BenchMeta {
	m := BenchMeta{
		Commit:      "unknown",
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		NumCPU:      runtime.NumCPU(),
		GeneratedAt: time.Now().UTC(),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				m.Commit = s.Value
			}
		}
	}
	if m.Commit == "unknown" {
		// go run builds without VCS stamping; ask git directly.
		if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
			m.Commit = strings.TrimSpace(string(out))
		}
	}
	return m
}

// Package stats provides the measurement containers and text renderers
// the benchmark harness uses to regenerate the paper's figures and
// tables: XY series (Fig. 6/7 style), aligned tables, CSV output, and a
// latency histogram.
package stats

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Point is one measurement: X is the swept parameter (message size,
// node count, ...), Y the measured value.
type Point struct {
	X, Y float64
}

// Series is a named curve.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// YAt returns the Y value at the first point with the given X, and
// whether one exists.
func (s *Series) YAt(x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}

// MaxY returns the largest Y value (0 for an empty series).
func (s *Series) MaxY() float64 {
	m := 0.0
	for _, p := range s.Points {
		if p.Y > m {
			m = p.Y
		}
	}
	return m
}

// Figure is a set of series sharing an X axis, renderable as the text
// analogue of one of the paper's plots.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// AddSeries creates, registers and returns a new series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Render writes the figure as an aligned table: one row per X value,
// one column per series.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "# %s\n", f.Title)
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	t := &Table{Columns: cols}
	for _, x := range sorted {
		row := []string{FormatSize(x)}
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, fmt.Sprintf("%.1f", y))
			} else {
				row = append(row, "-")
			}
		}
		t.Rows = append(t.Rows, row)
	}
	t.Render(w)
	fmt.Fprintf(w, "(y: %s)\n", f.YLabel)
}

// Chart renders the figure as horizontal ASCII bars, one block per
// series per X value — the terminal rendition of the paper's plots.
func (f *Figure) Chart(w io.Writer, width int) {
	if width <= 0 {
		width = 50
	}
	fmt.Fprintf(w, "# %s (bar = %s)\n", f.Title, f.YLabel)
	max := 0.0
	for _, s := range f.Series {
		if m := s.MaxY(); m > max {
			max = m
		}
	}
	if max == 0 {
		return
	}
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	nameW := 0
	for _, s := range f.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, x := range sorted {
		fmt.Fprintf(w, "%s\n", FormatSize(x))
		for _, s := range f.Series {
			y, ok := s.YAt(x)
			if !ok {
				continue
			}
			bars := int(y / max * float64(width))
			if bars == 0 && y > 0 {
				bars = 1
			}
			fmt.Fprintf(w, "  %-*s |%s %.1f\n", nameW, s.Name, strings.Repeat("#", bars), y)
		}
	}
}

// CSV writes the figure as comma-separated values.
func (f *Figure) CSV(w io.Writer) {
	cols := []string{f.XLabel}
	for _, s := range f.Series {
		cols = append(cols, s.Name)
	}
	fmt.Fprintln(w, strings.Join(cols, ","))
	xs := map[float64]bool{}
	for _, s := range f.Series {
		for _, p := range s.Points {
			xs[p.X] = true
		}
	}
	sorted := make([]float64, 0, len(xs))
	for x := range xs {
		sorted = append(sorted, x)
	}
	sort.Float64s(sorted)
	for _, x := range sorted {
		row := []string{fmt.Sprintf("%g", x)}
		for _, s := range f.Series {
			if y, ok := s.YAt(x); ok {
				row = append(row, fmt.Sprintf("%g", y))
			} else {
				row = append(row, "")
			}
		}
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Table is an aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "# %s\n", t.Title)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Histogram accumulates latency samples (any unit).
type Histogram struct {
	samples []float64
	sorted  bool
}

// Record adds a sample.
func (h *Histogram) Record(v float64) {
	h.samples = append(h.samples, v)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if len(h.samples) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range h.samples {
		sum += v
	}
	return sum / float64(len(h.samples))
}

// Min returns the smallest sample (0 when empty).
func (h *Histogram) Min() float64 {
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[0]
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() float64 {
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	return h.samples[len(h.samples)-1]
}

// Percentile returns the p-th percentile (p in [0,100]).
func (h *Histogram) Percentile(p float64) float64 {
	h.sort()
	if len(h.samples) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Float64s(h.samples)
		h.sorted = true
	}
}

// FormatSize renders a byte count compactly (64B, 4KB, 1MB).
func FormatSize(b float64) string {
	switch {
	case b >= 1<<30 && math.Mod(b, 1<<30) == 0:
		return fmt.Sprintf("%gGB", b/(1<<30))
	case b >= 1<<20 && math.Mod(b, 1<<20) == 0:
		return fmt.Sprintf("%gMB", b/(1<<20))
	case b >= 1<<10 && math.Mod(b, 1<<10) == 0:
		return fmt.Sprintf("%gKB", b/(1<<10))
	default:
		return fmt.Sprintf("%gB", b)
	}
}

// FormatMBs renders a bytes-per-second rate in MB/s as the paper does.
func FormatMBs(bps float64) string {
	return fmt.Sprintf("%.0f MB/s", bps/1e6)
}

package stats

import (
	"bytes"
	"strings"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Add(64, 200)
	s.Add(1024, 1500)
	if y, ok := s.YAt(64); !ok || y != 200 {
		t.Errorf("YAt(64) = %v,%v", y, ok)
	}
	if _, ok := s.YAt(128); ok {
		t.Error("YAt(128) found a phantom point")
	}
	if s.MaxY() != 1500 {
		t.Errorf("MaxY = %v", s.MaxY())
	}
}

func TestFigureRender(t *testing.T) {
	f := &Figure{Title: "TCCluster Bandwidth", XLabel: "size", YLabel: "MB/s"}
	a := f.AddSeries("weak")
	a.Add(64, 2700)
	a.Add(1024, 2750)
	b := f.AddSeries("ordered")
	b.Add(64, 2000)
	var buf bytes.Buffer
	f.Render(&buf)
	out := buf.String()
	for _, want := range []string{"TCCluster Bandwidth", "weak", "ordered", "64B", "1KB", "2700", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFigureCSV(t *testing.T) {
	f := &Figure{XLabel: "size"}
	f.AddSeries("a").Add(64, 1.5)
	var buf bytes.Buffer
	f.CSV(&buf)
	if got := buf.String(); got != "size,a\n64,1.5\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tab := &Table{Title: "t", Columns: []string{"name", "value"}}
	tab.AddRow("short", "1")
	tab.AddRow("a-much-longer-name", "22")
	var buf bytes.Buffer
	tab.Render(&buf)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.Contains(lines[2], "----") {
		t.Error("missing separator row")
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(float64(i))
	}
	if h.Count() != 100 || h.Min() != 1 || h.Max() != 100 {
		t.Errorf("count/min/max = %d/%v/%v", h.Count(), h.Min(), h.Max())
	}
	if m := h.Mean(); m != 50.5 {
		t.Errorf("mean = %v", m)
	}
	if p := h.Percentile(50); p != 50 {
		t.Errorf("p50 = %v", p)
	}
	if p := h.Percentile(99); p != 99 {
		t.Errorf("p99 = %v", p)
	}
	var empty Histogram
	if empty.Mean() != 0 || empty.Percentile(50) != 0 || empty.Min() != 0 {
		t.Error("empty histogram not zero-valued")
	}
}

func TestFormatters(t *testing.T) {
	cases := map[float64]string{
		64:      "64B",
		4096:    "4KB",
		1 << 20: "1MB",
		1 << 30: "1GB",
		100:     "100B",
	}
	for in, want := range cases {
		if got := FormatSize(in); got != want {
			t.Errorf("FormatSize(%v) = %q, want %q", in, got, want)
		}
	}
	if got := FormatMBs(2.7e9); got != "2700 MB/s" {
		t.Errorf("FormatMBs = %q", got)
	}
}

func TestFigureChart(t *testing.T) {
	f := &Figure{Title: "bw", YLabel: "MB/s"}
	a := f.AddSeries("tcc")
	a.Add(64, 2830)
	b := f.AddSeries("ib")
	b.Add(64, 190)
	var buf bytes.Buffer
	f.Chart(&buf, 40)
	out := buf.String()
	if !strings.Contains(out, "tcc") || !strings.Contains(out, "ib") {
		t.Fatalf("chart missing series:\n%s", out)
	}
	// The dominant series gets the full bar width; the small one at
	// least one block.
	lines := strings.Split(out, "\n")
	var tccBar, ibBar int
	for _, l := range lines {
		if strings.Contains(l, "tcc") {
			tccBar = strings.Count(l, "#")
		}
		if strings.Contains(l, "ib ") {
			ibBar = strings.Count(l, "#")
		}
	}
	if tccBar != 40 {
		t.Errorf("tcc bar = %d, want 40", tccBar)
	}
	if ibBar < 1 || ibBar > 4 {
		t.Errorf("ib bar = %d, want small but visible", ibBar)
	}
	var empty Figure
	empty.Chart(&buf, 10) // must not panic on an empty figure
}

func TestTableCSV(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	tab.AddRow("3", "4")
	var buf bytes.Buffer
	tab.CSV(&buf)
	if got := buf.String(); got != "a,b\n1,2\n3,4\n" {
		t.Errorf("CSV = %q", got)
	}
}

package topology_test

import (
	"fmt"

	"repro/internal/topology"
)

// ExampleMesh shows the load-bearing property of Y-first dimension-order
// routing: every node's remote address space decomposes into at most
// four contiguous intervals, one MMIO base/limit register pair each.
func ExampleMesh() {
	m, err := topology.Mesh(4, 4)
	if err != nil {
		panic(err)
	}
	fmt.Println("name:", m.Name())
	fmt.Println("diameter:", m.Diameter())
	fmt.Println("max intervals:", m.MaxIntervals())
	ok, _ := m.DeadlockFree()
	fmt.Println("deadlock-free:", ok)
	// The center-ish node 5 = (1,1): below, above, left, right.
	for _, iv := range m.Intervals(5) {
		fmt.Printf("[%d,%d] -> port %d\n", iv.Lo, iv.Hi, iv.Port)
	}
	// Output:
	// name: mesh-4x4
	// diameter: 6
	// max intervals: 4
	// deadlock-free: true
	// [0,3] -> port 0
	// [4,4] -> port 1
	// [6,7] -> port 2
	// [8,15] -> port 3
}

// ExampleRing demonstrates the deadlock checker rejecting shortest-arc
// ring routing on the single posted virtual channel.
func ExampleRing() {
	r, err := topology.Ring(8)
	if err != nil {
		panic(err)
	}
	ok, _ := r.DeadlockFree()
	fmt.Println("ring deadlock-free:", ok)
	m, _ := topology.Mesh(3, 3)
	ok, _ = m.DeadlockFree()
	fmt.Println("mesh deadlock-free:", ok)
	// Output:
	// ring deadlock-free: false
	// mesh deadlock-free: true
}

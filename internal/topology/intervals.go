package topology

import (
	"fmt"

	"repro/internal/errs"
)

// Interval is a contiguous run of destination nodes [Lo, Hi] routed out
// of one port. In the TCCluster address map each interval becomes one
// MMIO base/limit register pair (paper §IV.C/D).
type Interval struct {
	Lo, Hi int // destination node indices, inclusive
	Port   int
}

// Intervals computes, for one node, the decomposition of all remote
// destinations into maximal contiguous runs sharing an egress port.
// Fewer intervals = fewer MMIO register pairs consumed.
func (t *Topology) Intervals(node int) []Interval {
	var out []Interval
	for dst := 0; dst < t.n; dst++ {
		if dst == node {
			continue
		}
		port := t.NextHop(node, dst)
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.Port == port && last.Hi == dst-1 {
				last.Hi = dst
				continue
			}
		}
		out = append(out, Interval{Lo: dst, Hi: dst, Port: port})
	}
	return out
}

// MaxIntervals returns the largest interval count any node needs.
func (t *Topology) MaxIntervals() int {
	m := 0
	for node := 0; node < t.n; node++ {
		if c := len(t.Intervals(node)); c > m {
			m = c
		}
	}
	return m
}

// CheckIntervalRoutable verifies every node's routing fits in maxRanges
// MMIO register pairs. The Opteron has 8 pairs; TCCluster configurations
// reserve one for real IO (southbridge/APIC space), leaving 7.
func (t *Topology) CheckIntervalRoutable(maxRanges int) error {
	for node := 0; node < t.n; node++ {
		if c := len(t.Intervals(node)); c > maxRanges {
			return fmt.Errorf("topology: node %d needs %d address intervals, northbridge has %d MMIO ranges: %w",
				node, c, maxRanges, errs.ErrUnroutable)
		}
	}
	return nil
}

// Validate checks that routing is total and loop-free: every ordered
// pair (src, dst) reaches dst within n hops.
func (t *Topology) Validate() error {
	for s := 0; s < t.n; s++ {
		for d := 0; d < t.n; d++ {
			if s == d {
				continue
			}
			if t.HopCount(s, d) < 0 {
				return fmt.Errorf("topology: routing from %d to %d loops or dead-ends: %w",
					s, d, errs.ErrUnroutable)
			}
		}
	}
	return nil
}

// DeadlockFree checks the channel-dependency graph of the routing for
// cycles. Each directed link is a channel; routing dst traffic from
// channel (u->v) into channel (v->w) adds a dependency edge. TCCluster
// traffic is single-VC posted writes, so an acyclic dependency graph is
// required for deadlock freedom (dimension-order meshes pass; shortest-
// arc rings fail, which is why the paper's scaling argument uses
// meshes).
func (t *Topology) DeadlockFree() (bool, error) {
	if err := t.Validate(); err != nil {
		return false, err
	}
	type channel struct{ u, v int }
	deps := make(map[channel]map[channel]bool)
	addDep := func(a, b channel) {
		if deps[a] == nil {
			deps[a] = make(map[channel]bool)
		}
		deps[a][b] = true
	}
	for src := 0; src < t.n; src++ {
		for dst := 0; dst < t.n; dst++ {
			if src == dst {
				continue
			}
			cur := src
			var prev *channel
			for cur != dst {
				next := t.Peer(cur, t.NextHop(cur, dst))
				ch := channel{cur, next}
				if prev != nil {
					addDep(*prev, ch)
				}
				p := ch
				prev = &p
				cur = next
			}
		}
	}
	// Cycle detection via iterative DFS with colors.
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[channel]int)
	var chans []channel
	for ch := range deps {
		chans = append(chans, ch)
	}
	var visit func(ch channel) bool
	visit = func(ch channel) bool {
		color[ch] = gray
		for next := range deps[ch] {
			switch color[next] {
			case gray:
				return false
			case white:
				if !visit(next) {
					return false
				}
			}
		}
		color[ch] = black
		return true
	}
	for _, ch := range chans {
		if color[ch] == white {
			if !visit(ch) {
				return false, nil
			}
		}
	}
	return true, nil
}

// CheckDeadlockFree is the error-typed form of DeadlockFree: it returns
// nil for an acyclic channel-dependency graph and an error wrapping
// errs.ErrDeadlockTopology (or the underlying validation failure) when
// single-VC posted traffic over this routing could deadlock.
func (t *Topology) CheckDeadlockFree() error {
	ok, err := t.DeadlockFree()
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("topology: %s has a cyclic channel-dependency graph: %w",
			t.name, errs.ErrDeadlockTopology)
	}
	return nil
}

// ---- physical constraints (paper §IV.F) --------------------------------

// Medium is the physical transport of a TCCluster link.
type Medium int

const (
	// FR4 is standard PCB material: 24-inch trace limit.
	FR4 Medium = iota
	// Coax cables tolerate roughly twice the FR4 reach.
	Coax
)

// MaxTraceInches returns the signal-integrity length limit of a medium.
func (m Medium) MaxTraceInches() float64 {
	if m == Coax {
		return 48
	}
	return 24
}

func (m Medium) String() string {
	if m == Coax {
		return "coax"
	}
	return "FR4"
}

// PhysicalModel captures the backplane geometry: the center-to-center
// spacing of adjacent blades and of stacked rows.
type PhysicalModel struct {
	BladePitchInches float64 // horizontal spacing (x axis)
	RowPitchInches   float64 // vertical spacing (y axis)
	Medium           Medium
}

// DefaultPhysicalModel models a blade rack: ~1.2" blade pitch, ~7" row
// (2U chassis) pitch, FR4 backplane.
func DefaultPhysicalModel() PhysicalModel {
	return PhysicalModel{BladePitchInches: 1.2, RowPitchInches: 7, Medium: FR4}
}

// LinkLengthInches returns the Manhattan backplane distance of the link
// between nodes a and b.
func (pm PhysicalModel) LinkLengthInches(t *Topology, a, b int) float64 {
	ax, ay := t.Position(a)
	bx, by := t.Position(b)
	dx, dy := ax-bx, ay-by
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	return float64(dx)*pm.BladePitchInches + float64(dy)*pm.RowPitchInches
}

// MaxLinkLengthInches returns the longest link in the topology under
// this placement.
func (pm PhysicalModel) MaxLinkLengthInches(t *Topology) float64 {
	longest := 0.0
	for node := 0; node < t.N(); node++ {
		for _, nb := range t.Neighbors(node) {
			if nb.Peer < node {
				continue
			}
			if l := pm.LinkLengthInches(t, node, nb.Peer); l > longest {
				longest = l
			}
		}
	}
	return longest
}

// CheckPhysical verifies every link respects the medium's trace-length
// limit. A chain placed along one rack row violates FR4 quickly; the
// paper's balanced n x n blade arrangement does not.
func (pm PhysicalModel) CheckPhysical(t *Topology) error {
	limit := pm.Medium.MaxTraceInches()
	for node := 0; node < t.N(); node++ {
		for _, nb := range t.Neighbors(node) {
			if nb.Peer < node {
				continue
			}
			if l := pm.LinkLengthInches(t, node, nb.Peer); l > limit {
				return fmt.Errorf("topology: link %d-%d is %.1f inches, %v limit is %.0f: %w",
					node, nb.Peer, l, pm.Medium, limit, errs.ErrBadConfig)
			}
		}
	}
	return nil
}

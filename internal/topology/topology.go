// Package topology describes TCCluster interconnect topologies and the
// routing functions that drive them, and validates the two constraints
// the paper's architecture imposes:
//
//  1. Interval routability (§IV.D): the northbridge can only map single
//     contiguous address intervals to each outgoing link, and it has a
//     fixed number of MMIO base/limit register pairs. A topology+routing
//     combination is only implementable if every node's remote address
//     space decomposes into few enough contiguous intervals.
//  2. Physical realizability (§IV.F): HT trace length is limited to 24
//     inches on FR4 (more over coax), and all nodes must share a
//     mesochronous clock, which favors balanced blade-rack placements.
//
// Nodes are identified by their index in address order: node i owns the
// i-th slice of the global physical address space, which is what makes
// interval routing meaningful.
package topology

import (
	"fmt"

	"repro/internal/errs"
)

// Neighbor links a local port to a peer node.
type Neighbor struct {
	Port int
	Peer int
}

// Topology is an undirected interconnect graph with per-node ports and
// a deterministic next-hop routing function.
type Topology struct {
	name     string
	n        int
	maxPorts int
	ports    [][]int // ports[node][port] = peer, -1 if unwired
	pos      [][2]int
	route    func(t *Topology, src, dst int) int // returns egress port
}

// Name returns the topology's descriptive name.
func (t *Topology) Name() string { return t.name }

// N returns the number of nodes.
func (t *Topology) N() int { return t.n }

// MaxPorts returns the per-node port budget.
func (t *Topology) MaxPorts() int { return t.maxPorts }

// Peer returns the node wired to (node, port), or -1.
func (t *Topology) Peer(node, port int) int {
	if port < 0 || port >= len(t.ports[node]) {
		return -1
	}
	return t.ports[node][port]
}

// Neighbors lists the wired ports of node.
func (t *Topology) Neighbors(node int) []Neighbor {
	var out []Neighbor
	for p, peer := range t.ports[node] {
		if peer >= 0 {
			out = append(out, Neighbor{Port: p, Peer: peer})
		}
	}
	return out
}

// NumLinks returns the number of undirected links.
func (t *Topology) NumLinks() int {
	n := 0
	for node := range t.ports {
		for _, peer := range t.ports[node] {
			if peer > node {
				n++
			}
		}
	}
	return n
}

// Position returns the node's grid placement (blade/row), used by the
// physical-constraint model.
func (t *Topology) Position(node int) (x, y int) {
	return t.pos[node][0], t.pos[node][1]
}

// NextHop returns the egress port at src toward dst. It panics if
// src == dst; routing a packet to itself is a caller bug.
func (t *Topology) NextHop(src, dst int) int {
	if src == dst {
		panic("topology: NextHop with src == dst")
	}
	return t.route(t, src, dst)
}

// portTo returns the port at a wired to b, or -1.
func (t *Topology) portTo(a, b int) int {
	for p, peer := range t.ports[a] {
		if peer == b {
			return p
		}
	}
	return -1
}

func newTopology(name string, n, maxPorts int) *Topology {
	t := &Topology{name: name, n: n, maxPorts: maxPorts}
	t.ports = make([][]int, n)
	for i := range t.ports {
		t.ports[i] = make([]int, maxPorts)
		for p := range t.ports[i] {
			t.ports[i][p] = -1
		}
	}
	t.pos = make([][2]int, n)
	return t
}

func (t *Topology) wire(a, b int) error {
	pa, pb := -1, -1
	for p, peer := range t.ports[a] {
		if peer == -1 {
			pa = p
			break
		}
	}
	for p, peer := range t.ports[b] {
		if peer == -1 {
			pb = p
			break
		}
	}
	if pa == -1 || pb == -1 {
		return fmt.Errorf("topology: no free port wiring %d-%d (budget %d): %w", a, b, t.maxPorts, errs.ErrBadConfig)
	}
	t.ports[a][pa] = b
	t.ports[b][pb] = a
	return nil
}

// OpteronPorts is the per-node port budget of a single-socket node: the
// four HyperTransport links of an Opteron package, one of which the BSP
// node must reserve for its southbridge.
const OpteronPorts = 4

// Chain builds a 1-D chain of n nodes: the shape of the paper's 2-node
// prototype and its natural extension.
func Chain(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: chain needs >= 2 nodes, got %d: %w", n, errs.ErrBadConfig)
	}
	t := newTopology(fmt.Sprintf("chain-%d", n), n, OpteronPorts)
	for i := 0; i+1 < n; i++ {
		if err := t.wire(i, i+1); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		t.pos[i] = [2]int{i, 0}
	}
	t.route = chainRoute
	return t, nil
}

func chainRoute(t *Topology, src, dst int) int {
	if dst < src {
		return t.portTo(src, src-1)
	}
	return t.portTo(src, src+1)
}

// Ring builds a 1-D ring. Rings route shortest-arc, which makes them a
// deliberate negative example: the channel-dependency cycle around the
// ring is caught by the deadlock validator, and the wrapped arc needs an
// extra address interval.
func Ring(n int) (*Topology, error) {
	if n < 3 {
		return nil, fmt.Errorf("topology: ring needs >= 3 nodes, got %d: %w", n, errs.ErrBadConfig)
	}
	t := newTopology(fmt.Sprintf("ring-%d", n), n, OpteronPorts)
	for i := 0; i < n; i++ {
		if err := t.wire(i, (i+1)%n); err != nil {
			return nil, err
		}
	}
	for i := 0; i < n; i++ {
		t.pos[i] = [2]int{i, 0}
	}
	t.route = ringRoute
	return t, nil
}

func ringRoute(t *Topology, src, dst int) int {
	n := t.n
	fwd := (dst - src + n) % n
	if fwd <= n-fwd {
		return t.portTo(src, (src+1)%n)
	}
	return t.portTo(src, (src-1+n)%n)
}

// Mesh builds a w x h 2-D mesh with row-major node numbering and Y-first
// dimension-order routing. Y-first is the choice that makes every node's
// routing exactly four contiguous address intervals (everything below my
// row, everything above my row, left in my row, right in my row) — the
// form the northbridge's interval routing can express (paper §IV.D/§IV.F
// "for an nxn mesh ...").
func Mesh(w, h int) (*Topology, error) {
	if w < 1 || h < 1 || w*h < 2 {
		return nil, fmt.Errorf("topology: mesh %dx%d too small: %w", w, h, errs.ErrBadConfig)
	}
	t := newTopology(fmt.Sprintf("mesh-%dx%d", w, h), w*h, OpteronPorts)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				if err := t.wire(id(x, y), id(x+1, y)); err != nil {
					return nil, err
				}
			}
			if y+1 < h {
				if err := t.wire(id(x, y), id(x, y+1)); err != nil {
					return nil, err
				}
			}
			t.pos[id(x, y)] = [2]int{x, y}
		}
	}
	t.route = func(t *Topology, src, dst int) int { return meshRoute(t, w, src, dst) }
	return t, nil
}

func meshRoute(t *Topology, w, src, dst int) int {
	sx, sy := src%w, src/w
	dy := dst / w
	switch {
	case dy > sy:
		return t.portTo(src, src+w) // south first
	case dy < sy:
		return t.portTo(src, src-w) // north first
	case dst%w > sx:
		return t.portTo(src, src+1) // east within the row
	default:
		return t.portTo(src, src-1) // west within the row
	}
}

// Torus builds a w x h 2-D torus: a mesh with wraparound links in both
// dimensions, routed Y-first along the shorter arc. Wrap arcs split the
// contiguous destination runs, so a torus needs up to six address
// intervals per node — it still fits the northbridge's MMIO register
// file (barely), but unlike the mesh its channel dependencies are
// cyclic: the deadlock checker rejects it for single-VC posted traffic,
// the same reason shortest-arc rings fail.
func Torus(w, h int) (*Topology, error) {
	if w < 3 || h < 3 {
		return nil, fmt.Errorf("topology: torus needs >= 3x3, got %dx%d: %w", w, h, errs.ErrBadConfig)
	}
	t := newTopology(fmt.Sprintf("torus-%dx%d", w, h), w*h, OpteronPorts)
	id := func(x, y int) int { return (y%h)*w + (x % w) }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if err := t.wire(id(x, y), id(x+1, y)); err != nil {
				return nil, err
			}
			if err := t.wire(id(x, y), id(x, y+1)); err != nil {
				return nil, err
			}
			t.pos[id(x, y)] = [2]int{x, y}
		}
	}
	t.route = func(t *Topology, src, dst int) int { return torusRoute(t, w, h, src, dst) }
	return t, nil
}

func torusRoute(t *Topology, w, h, src, dst int) int {
	sx, sy := src%w, src/w
	dx, dy := dst%w, dst/w
	if sy != dy {
		// Y first, shorter arc.
		down := (dy - sy + h) % h
		if down <= h-down {
			return t.portTo(src, ((sy+1)%h)*w+sx)
		}
		return t.portTo(src, ((sy-1+h)%h)*w+sx)
	}
	right := (dx - sx + w) % w
	if right <= w-right {
		return t.portTo(src, sy*w+(sx+1)%w)
	}
	return t.portTo(src, sy*w+(sx-1+w)%w)
}

// FullyConnected builds an all-to-all topology; with 4 ports per node
// that caps at 5 nodes, mirroring the paper's observation that fully
// connected systems stop at small counts (§III).
func FullyConnected(n int) (*Topology, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: fully connected needs >= 2 nodes: %w", errs.ErrBadConfig)
	}
	if n > OpteronPorts+1 {
		return nil, fmt.Errorf("topology: fully connected %d nodes needs %d ports/node, Opteron has %d: %w",
			n, n-1, OpteronPorts, errs.ErrBadConfig)
	}
	t := newTopology(fmt.Sprintf("full-%d", n), n, OpteronPorts)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := t.wire(i, j); err != nil {
				return nil, err
			}
		}
		t.pos[i] = [2]int{i, 0}
	}
	t.route = func(t *Topology, src, dst int) int { return t.portTo(src, dst) }
	return t, nil
}

// Hypercube builds a d-dimensional hypercube (d <= 4 with Opteron's four
// links). Routing resolves the lowest differing dimension first, which
// keeps paths loop-free.
func Hypercube(d int) (*Topology, error) {
	if d < 1 || d > OpteronPorts {
		return nil, fmt.Errorf("topology: hypercube dimension %d out of range 1..%d: %w", d, OpteronPorts, errs.ErrBadConfig)
	}
	n := 1 << d
	t := newTopology(fmt.Sprintf("hypercube-%d", d), n, OpteronPorts)
	for i := 0; i < n; i++ {
		for b := 0; b < d; b++ {
			j := i ^ (1 << b)
			if j > i {
				if err := t.wire(i, j); err != nil {
					return nil, err
				}
			}
		}
		t.pos[i] = [2]int{i % 4, i / 4}
	}
	t.route = func(t *Topology, src, dst int) int {
		diff := src ^ dst
		b := 0
		for diff&1 == 0 {
			diff >>= 1
			b++
		}
		return t.portTo(src, src^(1<<b))
	}
	return t, nil
}

// HopCount returns the number of links a packet crosses from src to dst
// under the topology's routing. It returns -1 if routing loops or dead-
// ends (which Validate reports in detail).
func (t *Topology) HopCount(src, dst int) int {
	if src == dst {
		return 0
	}
	cur := src
	for hops := 1; hops <= t.n; hops++ {
		port := t.NextHop(cur, dst)
		if port < 0 {
			return -1
		}
		cur = t.Peer(cur, port)
		if cur < 0 {
			return -1
		}
		if cur == dst {
			return hops
		}
	}
	return -1
}

// Diameter returns the longest routed path in hops.
func (t *Topology) Diameter() int {
	d := 0
	for s := 0; s < t.n; s++ {
		for e := 0; e < t.n; e++ {
			if h := t.HopCount(s, e); h > d {
				d = h
			}
		}
	}
	return d
}

// AvgHops returns the mean routed distance over all ordered pairs.
func (t *Topology) AvgHops() float64 {
	total, pairs := 0, 0
	for s := 0; s < t.n; s++ {
		for e := 0; e < t.n; e++ {
			if s == e {
				continue
			}
			total += t.HopCount(s, e)
			pairs++
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(total) / float64(pairs)
}

package topology

import (
	"testing"
	"testing/quick"
)

func TestChainBasics(t *testing.T) {
	c, err := Chain(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 8 || c.NumLinks() != 7 {
		t.Fatalf("chain-8: N=%d links=%d", c.N(), c.NumLinks())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := c.Diameter(); d != 7 {
		t.Errorf("diameter = %d, want 7", d)
	}
	if h := c.HopCount(0, 7); h != 7 {
		t.Errorf("HopCount(0,7) = %d, want 7", h)
	}
	if h := c.HopCount(3, 3); h != 0 {
		t.Errorf("HopCount(3,3) = %d, want 0", h)
	}
}

func TestChainIntervals(t *testing.T) {
	c, _ := Chain(8)
	// Interior node: everything below goes one way, everything above the
	// other — exactly 2 intervals.
	iv := c.Intervals(3)
	if len(iv) != 2 {
		t.Fatalf("chain interior intervals = %v, want 2 runs", iv)
	}
	if iv[0].Lo != 0 || iv[0].Hi != 2 || iv[1].Lo != 4 || iv[1].Hi != 7 {
		t.Errorf("intervals = %v", iv)
	}
	// End node: a single interval.
	if iv := c.Intervals(0); len(iv) != 1 {
		t.Errorf("chain end intervals = %v, want 1 run", iv)
	}
	if c.MaxIntervals() != 2 {
		t.Errorf("MaxIntervals = %d, want 2", c.MaxIntervals())
	}
}

func TestMeshYFirstIsFourIntervals(t *testing.T) {
	// The load-bearing property: Y-first dimension order + row-major
	// numbering keeps every node at <= 4 contiguous intervals, matching
	// the Opteron's 4 links and its handful of MMIO register pairs.
	for _, dim := range [][2]int{{4, 4}, {8, 8}, {3, 5}, {16, 16}} {
		m, err := Mesh(dim[0], dim[1])
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if got := m.MaxIntervals(); got > 4 {
			t.Errorf("%s: MaxIntervals = %d, want <= 4", m.Name(), got)
		}
		if err := m.CheckIntervalRoutable(7); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestMeshDiameter(t *testing.T) {
	m, _ := Mesh(8, 8)
	if d := m.Diameter(); d != 14 {
		t.Errorf("8x8 mesh diameter = %d, want 14", d)
	}
	if h := m.HopCount(0, 63); h != 14 {
		t.Errorf("corner-to-corner hops = %d, want 14", h)
	}
}

func TestMeshDeadlockFree(t *testing.T) {
	m, _ := Mesh(4, 4)
	ok, err := m.DeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("dimension-order mesh flagged as deadlocking")
	}
}

func TestRingDeadlocks(t *testing.T) {
	r, _ := Ring(6)
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	ok, err := r.DeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("shortest-arc ring not flagged: its channel dependencies form a cycle")
	}
}

func TestRingWrapNeedsExtraInterval(t *testing.T) {
	r, _ := Ring(8)
	// Node 0's forward arc is contiguous [1..4] but the backward arc
	// [5..7] is also contiguous; interior nodes see the wrap split.
	if max := r.MaxIntervals(); max < 2 || max > 3 {
		t.Errorf("ring MaxIntervals = %d, want 2-3", max)
	}
}

func TestFullyConnected(t *testing.T) {
	f, err := FullyConnected(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := f.Diameter(); d != 1 {
		t.Errorf("diameter = %d, want 1", d)
	}
	ok, _ := f.DeadlockFree()
	if !ok {
		t.Error("single-hop full mesh cannot deadlock")
	}
	if _, err := FullyConnected(6); err == nil {
		t.Error("6-node full mesh accepted with 4 ports per node")
	}
}

func TestHypercube(t *testing.T) {
	h, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if h.N() != 16 || h.NumLinks() != 32 {
		t.Fatalf("hypercube-4: N=%d links=%d", h.N(), h.NumLinks())
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := h.Diameter(); d != 4 {
		t.Errorf("diameter = %d, want 4", d)
	}
	ok, _ := h.DeadlockFree()
	if !ok {
		t.Error("dimension-order hypercube flagged as deadlocking")
	}
	if _, err := Hypercube(5); err == nil {
		t.Error("hypercube-5 accepted with 4 ports")
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := Chain(1); err == nil {
		t.Error("Chain(1) accepted")
	}
	if _, err := Ring(2); err == nil {
		t.Error("Ring(2) accepted")
	}
	if _, err := Mesh(1, 1); err == nil {
		t.Error("Mesh(1,1) accepted")
	}
}

// Property: for any mesh, intervals at every node exactly cover all
// remote destinations with no overlap, and each interval's port is
// consistent with per-destination routing.
func TestIntervalsCoverProperty(t *testing.T) {
	f := func(w8, h8 uint8) bool {
		w := int(w8%6) + 2
		h := int(h8%6) + 2
		m, err := Mesh(w, h)
		if err != nil {
			return false
		}
		for node := 0; node < m.N(); node++ {
			covered := make([]bool, m.N())
			for _, iv := range m.Intervals(node) {
				for d := iv.Lo; d <= iv.Hi; d++ {
					if d == node || covered[d] {
						return false
					}
					covered[d] = true
					if m.NextHop(node, d) != iv.Port {
						return false
					}
				}
			}
			for d := 0; d < m.N(); d++ {
				if d != node && !covered[d] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestAvgHops(t *testing.T) {
	c, _ := Chain(2)
	if got := c.AvgHops(); got != 1 {
		t.Errorf("chain-2 AvgHops = %v, want 1", got)
	}
	f, _ := FullyConnected(4)
	if got := f.AvgHops(); got != 1 {
		t.Errorf("full-4 AvgHops = %v, want 1", got)
	}
}

// §IV.F: a long chain laid out along one rack row blows the 24-inch FR4
// budget; the same machine count as a balanced n x n mesh of blades
// stays inside it.
func TestPhysicalPlacementConstraints(t *testing.T) {
	pm := DefaultPhysicalModel()

	longChain, _ := Chain(64)
	// Neighbor links are 1.2" — fine. But a chain snaked over rows is
	// where it breaks; emulate the paper's point with a mesh vs a
	// row-spanning link check using row pitch.
	if err := pm.CheckPhysical(longChain); err != nil {
		t.Errorf("adjacent-blade chain should be buildable: %v", err)
	}

	mesh, _ := Mesh(8, 8)
	if err := pm.CheckPhysical(mesh); err != nil {
		t.Errorf("8x8 blade mesh should be buildable on FR4: %v", err)
	}
	if got := pm.MaxLinkLengthInches(mesh); got != 7 {
		t.Errorf("mesh max link = %.1f inches, want 7 (one row pitch)", got)
	}

	// A rack with 30-inch row pitch needs coax.
	far := PhysicalModel{BladePitchInches: 1.2, RowPitchInches: 30, Medium: FR4}
	if err := far.CheckPhysical(mesh); err == nil {
		t.Error("30-inch row pitch accepted on FR4")
	}
	far.Medium = Coax
	if err := far.CheckPhysical(mesh); err != nil {
		t.Errorf("coax should tolerate 30-inch rows: %v", err)
	}
}

func TestNextHopSelfPanics(t *testing.T) {
	c, _ := Chain(4)
	defer func() {
		if recover() == nil {
			t.Error("NextHop(2,2) did not panic")
		}
	}()
	c.NextHop(2, 2)
}

package topology

import "testing"

func TestTorusBasics(t *testing.T) {
	tr, err := Torus(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if tr.N() != 16 || tr.NumLinks() != 32 {
		t.Fatalf("torus-4x4: N=%d links=%d, want 16/32", tr.N(), tr.NumLinks())
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Wraparound halves the diameter: floor(4/2)+floor(4/2) = 4.
	if d := tr.Diameter(); d != 4 {
		t.Errorf("diameter = %d, want 4", d)
	}
	mesh, _ := Mesh(4, 4)
	if tr.AvgHops() >= mesh.AvgHops() {
		t.Errorf("torus avg hops %.2f not below mesh %.2f", tr.AvgHops(), mesh.AvgHops())
	}
}

func TestTorusUsesAllFourPorts(t *testing.T) {
	tr, _ := Torus(3, 3)
	for n := 0; n < tr.N(); n++ {
		if got := len(tr.Neighbors(n)); got != 4 {
			t.Errorf("node %d has %d neighbors, want 4", n, got)
		}
	}
}

// The wrap arcs fragment the destination runs: more intervals than a
// mesh, but still within the 7 usable MMIO pairs.
func TestTorusIntervalDemand(t *testing.T) {
	for _, dim := range [][2]int{{4, 4}, {5, 5}, {8, 8}, {6, 4}} {
		tr, err := Torus(dim[0], dim[1])
		if err != nil {
			t.Fatal(err)
		}
		maxIv := tr.MaxIntervals()
		mesh, _ := Mesh(dim[0], dim[1])
		if maxIv <= mesh.MaxIntervals() {
			t.Errorf("%s: %d intervals not above the mesh's %d (wrap must fragment)",
				tr.Name(), maxIv, mesh.MaxIntervals())
		}
		if err := tr.CheckIntervalRoutable(7); err != nil {
			t.Errorf("%s: %v", tr.Name(), err)
		}
	}
}

// Shortest-arc wrap routing creates channel-dependency cycles: a torus
// is NOT safe for single-VC posted traffic, unlike the mesh.
func TestTorusDeadlocks(t *testing.T) {
	tr, _ := Torus(4, 4)
	ok, err := tr.DeadlockFree()
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("torus wrap cycles not flagged by the deadlock checker")
	}
}

func TestTorusRejectsTinyDimensions(t *testing.T) {
	if _, err := Torus(2, 4); err == nil {
		t.Error("2-wide torus accepted (double links between the same pair)")
	}
}

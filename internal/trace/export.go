package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Chrome trace_event export. The format is the JSON Array/Object flavor
// consumed by Perfetto and chrome://tracing: a {"traceEvents": [...]}
// object whose entries carry a phase ("X" complete, "B"/"E" nested
// slices, "i" instants, "M" metadata), microsecond timestamps, and
// pid/tid lanes. The mapping here:
//
//   - links become processes (pid = linkPIDBase+link), with one thread
//     per transmit direction; matched PacketSent/PacketDelivered pairs
//     render as "X" slices whose duration is the packet's wire time,
//     and credit stalls as instants on the transmitting thread.
//   - nodes become processes (pid = nodePIDBase+node) with threads for
//     boot, MPI and the message layer; barriers and rendezvous render
//     as "B"/"E" slices, boot phases and ring-full stalls as instants.
const (
	nodePIDBase = 1
	linkPIDBase = 1000

	tidBoot = 1
	tidMPI  = 2
	tidMsg  = 3
)

// chromeEvent is one trace_event entry. Fields are emitted in a fixed
// order via struct tags so exports are byte-stable for identical event
// streams.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

func micros(t int64) float64 { return float64(t) / 1e6 } // ps -> us

// WriteChrome renders events as Chrome trace_event JSON. Events must be
// in emission order (Collector.Events returns them that way); output
// entries are sorted by timestamp as the viewers require.
func WriteChrome(w io.Writer, events []Event) error {
	var out []chromeEvent
	type pending struct {
		at int64
		ev Event
	}
	sent := make(map[flightKey]pending)
	named := map[int]string{} // pid -> process name

	for _, ev := range events {
		switch ev.Kind {
		case KindPacketSent:
			sent[flightKey{ev.Link, ev.Src, ev.Seq}] = pending{int64(ev.At), ev}
		case KindPacketDelivered:
			k := flightKey{ev.Link, ev.Src, ev.Seq}
			tx, ok := sent[k]
			if !ok {
				out = append(out, chromeEvent{Name: ev.Label, Ph: "i",
					Ts: micros(int64(ev.At)), Pid: linkPIDBase + ev.Link,
					Tid: ev.Src, S: "t"})
				continue
			}
			delete(sent, k)
			dur := micros(int64(ev.At) - tx.at)
			pid := linkPIDBase + ev.Link
			named[pid] = fmt.Sprintf("link%d", ev.Link)
			out = append(out, chromeEvent{Name: tx.ev.Label, Ph: "X",
				Ts: micros(tx.at), Dur: &dur, Pid: pid, Tid: ev.Src,
				Args: map[string]any{"bytes": tx.ev.Bytes, "seq": ev.Seq}})
		case KindCreditStall:
			pid := linkPIDBase + ev.Link
			named[pid] = fmt.Sprintf("link%d", ev.Link)
			out = append(out, chromeEvent{Name: "credit-stall", Ph: "i",
				Ts: micros(int64(ev.At)), Pid: pid, Tid: ev.Src, S: "t"})
		case KindRingFull:
			pid := nodePIDBase + ev.Src
			named[pid] = fmt.Sprintf("node%d", ev.Src)
			out = append(out, chromeEvent{Name: fmt.Sprintf("ring-full->n%d", ev.Dst),
				Ph: "i", Ts: micros(int64(ev.At)), Pid: pid, Tid: tidMsg, S: "t"})
		case KindBarrierEnter:
			pid := nodePIDBase + ev.Node
			named[pid] = fmt.Sprintf("node%d", ev.Node)
			out = append(out, chromeEvent{Name: "barrier", Ph: "B",
				Ts: micros(int64(ev.At)), Pid: pid, Tid: tidMPI,
				Args: map[string]any{"epoch": ev.Seq}})
		case KindBarrierExit:
			out = append(out, chromeEvent{Name: "barrier", Ph: "E",
				Ts: micros(int64(ev.At)), Pid: nodePIDBase + ev.Node, Tid: tidMPI})
		case KindRendezvousStart:
			pid := nodePIDBase + ev.Node
			named[pid] = fmt.Sprintf("node%d", ev.Node)
			out = append(out, chromeEvent{Name: fmt.Sprintf("rendezvous->n%d", ev.Dst),
				Ph: "B", Ts: micros(int64(ev.At)), Pid: pid, Tid: tidMPI,
				Args: map[string]any{"bytes": ev.Bytes}})
		case KindRendezvousDone:
			out = append(out, chromeEvent{Name: fmt.Sprintf("rendezvous->n%d", ev.Dst),
				Ph: "E", Ts: micros(int64(ev.At)), Pid: nodePIDBase + ev.Node, Tid: tidMPI})
		case KindBootPhase:
			pid := nodePIDBase + ev.Node
			named[pid] = fmt.Sprintf("node%d", ev.Node)
			out = append(out, chromeEvent{Name: ev.Label, Ph: "i",
				Ts: micros(int64(ev.At)), Pid: pid, Tid: tidBoot, S: "t"})
		case KindForward, KindMasterAbort:
			pid := nodePIDBase + ev.Node
			named[pid] = fmt.Sprintf("node%d", ev.Node)
			out = append(out, chromeEvent{Name: ev.Kind.String(), Ph: "i",
				Ts: micros(int64(ev.At)), Pid: pid, Tid: tidMsg, S: "t"})
		case KindPhaseSpan:
			// Profiler phase spans render as complete slices on the link
			// (or node) process, one lane per transmit direction.
			pid, tid := nodePIDBase, tidMsg
			if ev.Link >= 0 {
				pid, tid = linkPIDBase+ev.Link, ev.Src
				named[pid] = fmt.Sprintf("link%d", ev.Link)
			} else if ev.Node >= 0 {
				pid = nodePIDBase + ev.Node
				named[pid] = fmt.Sprintf("node%d", ev.Node)
			}
			dur := micros(int64(ev.Dur))
			out = append(out, chromeEvent{Name: ev.Label, Ph: "X",
				Ts: micros(int64(ev.At)), Dur: &dur, Pid: pid, Tid: tid})
		case KindAlert, KindAlertResolved:
			// Alerts land on the lane of whatever they scope to: a link
			// process when Link is set, a node process otherwise.
			pid, tid := nodePIDBase, tidMsg
			if ev.Link >= 0 {
				pid, tid = linkPIDBase+ev.Link, 0
				named[pid] = fmt.Sprintf("link%d", ev.Link)
			} else if ev.Node >= 0 {
				pid = nodePIDBase + ev.Node
				named[pid] = fmt.Sprintf("node%d", ev.Node)
			}
			out = append(out, chromeEvent{Name: ev.Kind.String() + ": " + ev.Label,
				Ph: "i", Ts: micros(int64(ev.At)), Pid: pid, Tid: tid, S: "g"})
		}
	}
	// Unmatched sends (still in flight at capture end) become instants.
	for _, tx := range sent {
		out = append(out, chromeEvent{Name: tx.ev.Label, Ph: "i",
			Ts: micros(tx.at), Pid: linkPIDBase + tx.ev.Link, Tid: tx.ev.Src, S: "t"})
	}

	// Viewers require time order; ties keep a deterministic secondary
	// order so identical event streams export byte-identically.
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Ts != out[j].Ts {
			return out[i].Ts < out[j].Ts
		}
		if out[i].Pid != out[j].Pid {
			return out[i].Pid < out[j].Pid
		}
		return out[i].Tid < out[j].Tid
	})

	// Metadata names the lanes; emitted first, sorted by pid.
	var meta []chromeEvent
	pids := make([]int, 0, len(named))
	for pid := range named {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		meta = append(meta, chromeEvent{Name: "process_name", Ph: "M", Pid: pid,
			Args: map[string]any{"name": named[pid]}})
		if pid >= linkPIDBase {
			meta = append(meta,
				chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: 0,
					Args: map[string]any{"name": "A->B"}},
				chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: 1,
					Args: map[string]any{"name": "B->A"}})
		} else {
			for tid, name := range map[int]string{tidBoot: "boot", tidMPI: "mpi", tidMsg: "msg"} {
				meta = append(meta, chromeEvent{Name: "thread_name", Ph: "M",
					Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
			}
		}
	}
	sort.SliceStable(meta, func(i, j int) bool {
		if meta[i].Pid != meta[j].Pid {
			return meta[i].Pid < meta[j].Pid
		}
		if meta[i].Name != meta[j].Name {
			return meta[i].Name < meta[j].Name
		}
		return meta[i].Tid < meta[j].Tid
	})

	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		DisplayUnit string        `json:"displayTimeUnit"`
	}{TraceEvents: append(meta, out...), DisplayUnit: "ns"}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteCSV renders events as CSV with a fixed header, one event per
// row, in the given order. The encoding is deterministic: identical
// event streams produce identical bytes, which the determinism
// regression test relies on.
func WriteCSV(w io.Writer, events []Event) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"at_ps", "kind", "node", "link", "src", "dst", "seq", "bytes", "label"}); err != nil {
		return err
	}
	for _, ev := range events {
		rec := []string{
			strconv.FormatInt(int64(ev.At), 10),
			ev.Kind.String(),
			strconv.Itoa(ev.Node),
			strconv.Itoa(ev.Link),
			strconv.Itoa(ev.Src),
			strconv.Itoa(ev.Dst),
			strconv.FormatUint(ev.Seq, 10),
			strconv.Itoa(ev.Bytes),
			ev.Label,
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Key identifies one metric instance: a name plus the node / link /
// channel it is scoped to. Unused dimensions stay zero; by convention
// names are dotted ("link.pkts_sent", "mpi.barrier_ps").
type Key struct {
	Name string
	Node int // supernode or rank, 0 when unscoped
	Link int // external link id, 0 when unscoped
	Chan int // channel discriminator (e.g. destination), 0 when unscoped
}

func (k Key) String() string {
	s := k.Name
	if k.Node != 0 || k.Link != 0 || k.Chan != 0 {
		s += fmt.Sprintf("{node=%d,link=%d,chan=%d}", k.Node, k.Link, k.Chan)
	}
	return s
}

// Counter is a monotonically increasing count. Safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time value. Safe for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the fixed bucket count of a Histogram: bucket i counts
// observations whose bit length is i, i.e. exponential buckets
// [2^(i-1), 2^i). Picosecond latencies up to ~18 hours fit in 63 bits.
const histBuckets = 64

// Histogram is a log2-bucketed distribution (latencies in picoseconds,
// sizes in bytes). Safe for concurrent use.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	min     atomic.Uint64 // stored as value+1 so zero means "unset"
	max     atomic.Uint64 // stored as value+1 so zero means "unset"
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.buckets[bitLen(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if cur != 0 && cur-1 <= v {
			break
		}
		if h.min.CompareAndSwap(cur, v+1) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if cur != 0 && cur-1 >= v {
			break
		}
		if h.max.CompareAndSwap(cur, v+1) {
			break
		}
	}
}

func bitLen(v uint64) int {
	n := 0
	for v != 0 {
		v >>= 1
		n++
	}
	return n
}

// HistogramSnapshot is a copied-out distribution.
type HistogramSnapshot struct {
	Count    uint64
	Sum      uint64
	Min, Max uint64
	Buckets  map[int]uint64 // bit length -> count, zero buckets omitted
}

// Mean returns the average observed value (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the p-quantile of the distribution (0 <= p <= 1).
// Bucket i spans [2^(i-1), 2^i); the estimate interpolates linearly
// inside the bucket holding the target rank and is clamped to the exact
// observed [Min, Max], so single-valued and tight distributions come
// back exact rather than smeared across a power-of-two bucket. Out of
// range p is clamped; an empty histogram reports 0.
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || math.IsNaN(p) {
		return 0
	}
	if p <= 0 {
		return float64(s.Min)
	}
	if p >= 1 {
		return float64(s.Max)
	}
	target := p * float64(s.Count)
	cum := 0.0
	for i := 0; i < histBuckets; i++ {
		n := float64(s.Buckets[i])
		if n == 0 {
			continue
		}
		if cum+n < target {
			cum += n
			continue
		}
		if i == 0 { // bucket 0 holds only the value 0
			return clampF(0, float64(s.Min), float64(s.Max))
		}
		lo := float64(uint64(1) << (i - 1))
		hi := lo * 2
		frac := (target - cum) / n
		return clampF(lo+frac*(hi-lo), float64(s.Min), float64(s.Max))
	}
	return float64(s.Max)
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load(),
		Buckets: map[int]uint64{}}
	if m := h.min.Load(); m != 0 {
		s.Min = m - 1
	}
	if m := h.max.Load(); m != 0 {
		s.Max = m - 1
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.Buckets[i] = n
		}
	}
	return s
}

// Metrics is a registry of counters, gauges and histograms. Lookups
// take a mutex; the returned instruments update with atomics, so hold
// on to them on hot paths.
type Metrics struct {
	mu         sync.Mutex
	counters   map[Key]*Counter
	gauges     map[Key]*Gauge
	histograms map[Key]*Histogram
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:   make(map[Key]*Counter),
		gauges:     make(map[Key]*Gauge),
		histograms: make(map[Key]*Histogram),
	}
}

// Counter returns (creating if needed) the counter for k.
func (m *Metrics) Counter(k Key) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.counters[k]
	if c == nil {
		c = &Counter{}
		m.counters[k] = c
	}
	return c
}

// Gauge returns (creating if needed) the gauge for k.
func (m *Metrics) Gauge(k Key) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g := m.gauges[k]
	if g == nil {
		g = &Gauge{}
		m.gauges[k] = g
	}
	return g
}

// Histogram returns (creating if needed) the histogram for k.
func (m *Metrics) Histogram(k Key) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := m.histograms[k]
	if h == nil {
		h = &Histogram{}
		m.histograms[k] = h
	}
	return h
}

// Snapshot is a consistent copy of every metric in a registry at one
// instant.
type Snapshot struct {
	Counters   map[Key]uint64
	Gauges     map[Key]float64
	Histograms map[Key]HistogramSnapshot
}

// NewSnapshot returns an empty snapshot ready to be filled.
func NewSnapshot() Snapshot {
	return Snapshot{
		Counters:   make(map[Key]uint64),
		Gauges:     make(map[Key]float64),
		Histograms: make(map[Key]HistogramSnapshot),
	}
}

// Snapshot copies every registered metric out of the registry.
func (m *Metrics) Snapshot() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := NewSnapshot()
	for k, c := range m.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range m.gauges {
		s.Gauges[k] = g.Value()
	}
	for k, h := range m.histograms {
		s.Histograms[k] = h.snapshot()
	}
	return s
}

// Merge folds other into s (other wins on key collisions).
func (s Snapshot) Merge(other Snapshot) {
	for k, v := range other.Counters {
		s.Counters[k] = v
	}
	for k, v := range other.Gauges {
		s.Gauges[k] = v
	}
	for k, v := range other.Histograms {
		s.Histograms[k] = v
	}
}

// Keys returns every counter key in deterministic order (for rendering).
func (s Snapshot) Keys() []Key {
	keys := make([]Key, 0, len(s.Counters))
	for k := range s.Counters {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Link != b.Link {
			return a.Link < b.Link
		}
		return a.Chan < b.Chan
	})
	return keys
}

package trace

import (
	"math"
	"testing"
)

func TestQuantileEmptyHistogram(t *testing.T) {
	var s HistogramSnapshot
	for _, p := range []float64{0, 0.5, 0.99, 1, math.NaN()} {
		if q := s.Quantile(p); q != 0 {
			t.Fatalf("Quantile(%v) on empty histogram = %g, want 0", p, q)
		}
	}
}

func TestQuantileSingleValueIsExact(t *testing.T) {
	h := &Histogram{}
	for i := 0; i < 10; i++ {
		h.Observe(100)
	}
	s := h.snapshot()
	// A power-of-two bucket spans [64, 128); min/max clamping must pull
	// every quantile back to the one observed value.
	for _, p := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if q := s.Quantile(p); q != 100 {
			t.Fatalf("Quantile(%v) = %g, want exactly 100", p, q)
		}
	}
}

func TestQuantileUniformDistribution(t *testing.T) {
	h := &Histogram{}
	const n = 1000
	for v := uint64(1); v <= n; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	cases := []struct {
		p    float64
		want float64
	}{
		{0.5, 500},
		{0.99, 990},
		{0.999, 999},
	}
	for _, c := range cases {
		got := s.Quantile(c.p)
		// log2 buckets bound the estimate to within the bucket that holds
		// the target rank, clamped to [Min, Max]; for a uniform [1,1000]
		// distribution every estimate must land within a few percent.
		if relErr := math.Abs(got-c.want) / c.want; relErr > 0.05 {
			t.Errorf("Quantile(%v) = %g, want %g within 5%% (err %.1f%%)",
				c.p, got, c.want, 100*relErr)
		}
	}
	if s.Quantile(0) != float64(s.Min) {
		t.Errorf("Quantile(0) = %g, want Min %d", s.Quantile(0), s.Min)
	}
	if s.Quantile(1) != float64(s.Max) {
		t.Errorf("Quantile(1) = %g, want Max %d", s.Quantile(1), s.Max)
	}
	if s.Quantile(-3) != float64(s.Min) || s.Quantile(7) != float64(s.Max) {
		t.Error("out-of-range p must clamp to Min/Max")
	}
}

func TestQuantileMonotonic(t *testing.T) {
	h := &Histogram{}
	for _, v := range []uint64{0, 1, 3, 8, 8, 8, 120, 4096, 1 << 20} {
		h.Observe(v)
	}
	s := h.snapshot()
	prev := math.Inf(-1)
	for p := 0.0; p <= 1.0; p += 0.01 {
		q := s.Quantile(p)
		if q < prev {
			t.Fatalf("Quantile not monotone: Quantile(%v)=%g < previous %g", p, q, prev)
		}
		prev = q
	}
}

package trace

import "sort"

// Shard is a per-partition event buffer. A parallel run gives each
// partition its own Shard so hot-path emissions never contend on (or
// race through) the shared base tracer; the coordinator merges shards
// into the base at window barriers, when all workers are parked.
type Shard struct {
	buf []Event
}

// Emit appends the event. Only the owning partition's goroutine may
// call Emit, and only while its window runs.
func (s *Shard) Emit(ev Event) { s.buf = append(s.buf, ev) }

// Shards fans one base Tracer out into per-partition shards.
type Shards struct {
	base    Tracer
	shards  []*Shard
	scratch []Event
}

// NewShards creates n shards in front of base.
func NewShards(base Tracer, n int) *Shards {
	ss := &Shards{base: base, shards: make([]*Shard, n)}
	for i := range ss.shards {
		ss.shards[i] = &Shard{}
	}
	return ss
}

// Shard returns partition i's tracer.
func (ss *Shards) Shard(i int) Tracer { return ss.shards[i] }

// Merge drains every shard into the base tracer in virtual-time order.
// The sort is stable with shards concatenated in partition order, so
// same-timestamp events keep their per-partition emission order and
// tie-break deterministically by partition index — merged output is
// reproducible run to run. Coordinator only, at a window barrier.
func (ss *Shards) Merge() {
	total := 0
	for _, s := range ss.shards {
		total += len(s.buf)
	}
	if total == 0 {
		return
	}
	ss.scratch = ss.scratch[:0]
	for _, s := range ss.shards {
		ss.scratch = append(ss.scratch, s.buf...)
		s.buf = s.buf[:0]
	}
	sort.SliceStable(ss.scratch, func(i, j int) bool {
		return ss.scratch[i].At < ss.scratch[j].At
	})
	for i := range ss.scratch {
		ss.base.Emit(ss.scratch[i])
		ss.scratch[i] = Event{} // drop Label/Data references for GC
	}
}

// Package trace is the cluster-wide observability substrate: every
// layer of the TCCluster model — HT links, northbridges, the message
// library, MPI collectives, firmware boot phases — emits typed events
// into a Tracer, and a metrics registry aggregates counters, gauges and
// latency histograms keyed by node/link/channel.
//
// The design mirrors what APEnet+ (arXiv:1102.3796) ships as hardware
// event counters: interconnect tuning is impossible without a uniform
// view of per-packet serialization, credit stalls, ring occupancy and
// barrier skew. Here the same taxonomy is a software contract.
//
// Tracing is strictly opt-in and free when disabled: every emission
// site guards with a single nil check, so the hot send/poll paths pay
// one predictable branch. The standard Tracer implementation is
// Collector, a bounded ring buffer whose contents export to a Chrome
// trace_event JSON file (viewable in Perfetto or chrome://tracing) or
// CSV.
package trace

import (
	"fmt"
	"sync"

	"repro/internal/sim"
)

// Kind is the type tag of a trace event. The taxonomy is fixed so
// exporters and assertions can switch on it.
type Kind uint8

const (
	// KindPacketSent fires when a link port begins serializing a packet
	// (Link = link id, Src/Dst = port sides, Seq = per-port packet
	// number, Bytes = wire bytes).
	KindPacketSent Kind = iota + 1
	// KindPacketDelivered fires when the peer port delivers the same
	// packet (same Link/Seq as the matching KindPacketSent).
	KindPacketDelivered
	// KindCreditStall fires when a packet had to wait for flow-control
	// credits before serialization.
	KindCreditStall
	// KindRingFull fires when a message-library sender finds the
	// receive ring full and must poll flow control (Src/Dst = channel
	// endpoints).
	KindRingFull
	// KindBarrierEnter and KindBarrierExit bracket one rank's stay in
	// an MPI barrier (Node = rank, Seq = barrier epoch).
	KindBarrierEnter
	KindBarrierExit
	// KindBootPhase fires when firmware records a boot phase (Node =
	// machine index, Label = phase name).
	KindBootPhase
	// KindRendezvousStart and KindRendezvousDone bracket one MPI
	// rendezvous transfer (Node = sender rank, Dst = receiver rank,
	// Bytes = payload).
	KindRendezvousStart
	KindRendezvousDone
	// KindForward fires when a northbridge forwards a transit packet
	// toward an egress link (Node = supernode index).
	KindForward
	// KindMasterAbort fires when an address decodes to nothing — a
	// routing fault (Node = supernode index).
	KindMasterAbort
	// KindAlert fires when a monitor watchdog rule raises an alert
	// (Label = rule name and detail, Node/Link = the alert's scope,
	// -1 when unscoped).
	KindAlert
	// KindAlertResolved fires when the condition behind a previously
	// raised alert clears (same Label/Node/Link as the KindAlert).
	KindAlertResolved
	// KindLinkState fires when a fault campaign moves an external link
	// through its health state machine (Link = link id, Label = the new
	// state: alive, degraded, dead, retraining).
	KindLinkState
	// KindPhaseSpan is a profiler-emitted duration span: one packet's
	// stay in one lifecycle phase (Label = phase name, Dur = span
	// length, At = span start). Emitted only under WithProfile(...,
	// spans) and rendered as complete ("X") slices by the Chrome
	// exporter.
	KindPhaseSpan
)

func (k Kind) String() string {
	switch k {
	case KindPacketSent:
		return "packet-sent"
	case KindPacketDelivered:
		return "packet-delivered"
	case KindCreditStall:
		return "credit-stall"
	case KindRingFull:
		return "ring-full"
	case KindBarrierEnter:
		return "barrier-enter"
	case KindBarrierExit:
		return "barrier-exit"
	case KindBootPhase:
		return "boot-phase"
	case KindRendezvousStart:
		return "rendezvous-start"
	case KindRendezvousDone:
		return "rendezvous-done"
	case KindForward:
		return "forward"
	case KindMasterAbort:
		return "master-abort"
	case KindAlert:
		return "alert"
	case KindAlertResolved:
		return "alert-resolved"
	case KindLinkState:
		return "link-state"
	case KindPhaseSpan:
		return "phase-span"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Event is one observation. Fields not meaningful for a Kind are -1
// (indices) or zero. Events are plain values: emitting one allocates
// nothing beyond its Label string, and Labels are only built inside
// the tracer nil check.
type Event struct {
	At    sim.Time // virtual timestamp
	Dur   sim.Time // span length (KindPhaseSpan only), else 0
	Kind  Kind
	Node  int    // supernode / rank index, -1 when not applicable
	Link  int    // external link id, -1 when not applicable
	Src   int    // port side, channel source, or sender rank
	Dst   int    // port side, channel destination, or receiver rank
	Seq   uint64 // per-port packet number, barrier epoch, phase index
	Bytes int    // wire or payload bytes
	Label string // packet rendering, boot phase name, free-form detail
}

// Tracer consumes trace events. Implementations must tolerate emission
// from inside simulation callbacks; Collector is the standard one.
// A nil Tracer disables tracing — every instrumented layer guards each
// emission with one nil check and skips all event construction.
type Tracer interface {
	Emit(Event)
}

// Collector is a bounded ring-buffer Tracer: it keeps the most recent
// Capacity events, counts what it had to drop, and feeds the derived
// metrics registry (per-link packet latency histograms, per-kind event
// counters). It is mutex-guarded so the live (goroutine) backend and
// tests reading mid-run stay race-free.
type Collector struct {
	mu      sync.Mutex
	buf     []Event // ring storage
	start   int     // index of the oldest event
	count   int     // events currently stored
	total   uint64  // events ever emitted
	dropped uint64

	metrics  *Metrics
	inFlight map[flightKey]sim.Time // sent-but-undelivered packets
}

type flightKey struct {
	link, side int
	seq        uint64
}

// NewCollector returns a Collector keeping at most capacity events
// (minimum 16).
func NewCollector(capacity int) *Collector {
	if capacity < 16 {
		capacity = 16
	}
	return &Collector{
		buf:      make([]Event, capacity),
		metrics:  NewMetrics(),
		inFlight: make(map[flightKey]sim.Time),
	}
}

// Emit records ev, evicting the oldest event when the ring is full.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	if c.count == len(c.buf) {
		c.start = (c.start + 1) % len(c.buf)
		c.count--
		c.dropped++
	}
	c.buf[(c.start+c.count)%len(c.buf)] = ev
	c.count++
	c.observe(ev)
}

// observe maintains the derived metrics. Called with the lock held.
func (c *Collector) observe(ev Event) {
	c.metrics.Counter(Key{Name: "events." + ev.Kind.String()}).Add(1)
	switch ev.Kind {
	case KindPacketSent:
		c.metrics.Counter(Key{Name: "link.pkts_sent", Link: ev.Link}).Add(1)
		c.metrics.Counter(Key{Name: "link.bytes_sent", Link: ev.Link}).Add(uint64(ev.Bytes))
		c.inFlight[flightKey{ev.Link, ev.Src, ev.Seq}] = ev.At
	case KindPacketDelivered:
		k := flightKey{ev.Link, ev.Src, ev.Seq}
		if t0, ok := c.inFlight[k]; ok {
			delete(c.inFlight, k)
			c.metrics.Histogram(Key{Name: "link.packet_latency_ps", Link: ev.Link}).
				Observe(uint64(ev.At - t0))
		}
	case KindCreditStall:
		c.metrics.Counter(Key{Name: "link.credit_stalls", Link: ev.Link}).Add(1)
	case KindRingFull:
		c.metrics.Counter(Key{Name: "chan.ring_full", Node: ev.Src, Chan: ev.Dst}).Add(1)
	case KindBarrierEnter:
		c.inFlight[flightKey{-1, ev.Node, ev.Seq}] = ev.At
	case KindBarrierExit:
		k := flightKey{-1, ev.Node, ev.Seq}
		if t0, ok := c.inFlight[k]; ok {
			delete(c.inFlight, k)
			c.metrics.Histogram(Key{Name: "mpi.barrier_ps", Node: ev.Node}).
				Observe(uint64(ev.At - t0))
		}
	case KindRendezvousStart:
		c.metrics.Counter(Key{Name: "mpi.rendezvous", Node: ev.Node}).Add(1)
	case KindAlert:
		c.metrics.Counter(Key{Name: "alerts.raised"}).Add(1)
	case KindAlertResolved:
		c.metrics.Counter(Key{Name: "alerts.resolved"}).Add(1)
	case KindLinkState:
		c.metrics.Counter(Key{Name: "link.state_changes", Link: ev.Link}).Add(1)
	}
}

// Events returns the buffered events, oldest first.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, c.count)
	for i := 0; i < c.count; i++ {
		out[i] = c.buf[(c.start+i)%len(c.buf)]
	}
	return out
}

// Total returns how many events were ever emitted.
func (c *Collector) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Dropped returns how many events the bounded ring evicted.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Metrics returns the registry of metrics derived from the event
// stream.
func (c *Collector) Metrics() *Metrics { return c.metrics }

// Reset discards buffered events and derived state; the metrics
// registry is replaced.
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.start, c.count, c.total, c.dropped = 0, 0, 0, 0
	c.metrics = NewMetrics()
	c.inFlight = make(map[flightKey]sim.Time)
}

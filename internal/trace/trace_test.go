package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestCollectorKeepsMostRecent(t *testing.T) {
	c := NewCollector(16)
	for i := 0; i < 40; i++ {
		c.Emit(Event{At: sim.Time(i), Kind: KindCreditStall, Link: 0, Seq: uint64(i)})
	}
	evs := c.Events()
	if len(evs) != 16 {
		t.Fatalf("got %d events, want 16", len(evs))
	}
	if evs[0].Seq != 24 || evs[15].Seq != 39 {
		t.Fatalf("ring kept wrong window: first seq %d, last %d", evs[0].Seq, evs[15].Seq)
	}
	if c.Dropped() != 24 {
		t.Fatalf("dropped = %d, want 24", c.Dropped())
	}
	if c.Total() != 40 {
		t.Fatalf("total = %d, want 40", c.Total())
	}
}

func TestCollectorDerivesLatencyHistogram(t *testing.T) {
	c := NewCollector(64)
	c.Emit(Event{At: 1000, Kind: KindPacketSent, Link: 2, Src: 0, Dst: 1, Seq: 1, Bytes: 72})
	c.Emit(Event{At: 5000, Kind: KindPacketDelivered, Link: 2, Src: 0, Dst: 1, Seq: 1, Bytes: 72})
	snap := c.Metrics().Snapshot()
	h, ok := snap.Histograms[Key{Name: "link.packet_latency_ps", Link: 2}]
	if !ok {
		t.Fatal("no latency histogram for link 2")
	}
	if h.Count != 1 || h.Sum != 4000 || h.Min != 4000 || h.Max != 4000 {
		t.Fatalf("histogram = %+v, want one 4000ps observation", h)
	}
	if snap.Counters[Key{Name: "link.pkts_sent", Link: 2}] != 1 {
		t.Fatal("pkts_sent counter missing")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(base uint64) {
			defer wg.Done()
			for i := uint64(0); i < 1000; i++ {
				h.Observe(base + i)
			}
		}(uint64(g) * 1000)
	}
	wg.Wait()
	s := h.snapshot()
	if s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
	if s.Min != 0 || s.Max != 3999 {
		t.Fatalf("min/max = %d/%d, want 0/3999", s.Min, s.Max)
	}
}

func TestWriteChromeValidAndOrdered(t *testing.T) {
	c := NewCollector(256)
	// A packet pair, a stall, a barrier, a boot phase.
	c.Emit(Event{At: 0, Kind: KindBootPhase, Node: 0, Link: -1, Label: "cold-reset"})
	c.Emit(Event{At: 100, Kind: KindPacketSent, Link: 0, Src: 0, Dst: 1, Seq: 1, Bytes: 72, Label: "WrPosted"})
	c.Emit(Event{At: 150, Kind: KindCreditStall, Link: 0, Src: 0})
	c.Emit(Event{At: 400, Kind: KindPacketDelivered, Link: 0, Src: 0, Dst: 1, Seq: 1, Bytes: 72})
	c.Emit(Event{At: 500, Kind: KindBarrierEnter, Node: 1, Link: -1, Seq: 3})
	c.Emit(Event{At: 900, Kind: KindBarrierExit, Node: 1, Link: -1, Seq: 3})

	var buf bytes.Buffer
	if err := WriteChrome(&buf, c.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
			Pid  int     `json:"pid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid chrome trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	lastTs := -1.0
	var sawComplete, sawBarrier bool
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			continue // metadata leads, has no timestamp
		}
		if ev.Ts < lastTs {
			t.Fatalf("events out of time order: %v after %v", ev.Ts, lastTs)
		}
		lastTs = ev.Ts
		if ev.Ph == "X" && ev.Name == "WrPosted" {
			sawComplete = true
			if ev.Dur <= 0 {
				t.Fatalf("complete event with non-positive duration %v", ev.Dur)
			}
		}
		if ev.Ph == "B" && ev.Name == "barrier" {
			sawBarrier = true
		}
	}
	if !sawComplete {
		t.Fatal("matched packet pair did not render as an X slice")
	}
	if !sawBarrier {
		t.Fatal("barrier did not render as a B slice")
	}
}

func TestWriteChromeDeterministic(t *testing.T) {
	emit := func() []byte {
		c := NewCollector(64)
		c.Emit(Event{At: 10, Kind: KindBootPhase, Node: 0, Label: "a"})
		c.Emit(Event{At: 10, Kind: KindBootPhase, Node: 1, Label: "b"})
		c.Emit(Event{At: 20, Kind: KindPacketSent, Link: 1, Src: 1, Seq: 9, Bytes: 12, Label: "p"})
		c.Emit(Event{At: 30, Kind: KindPacketDelivered, Link: 1, Src: 1, Seq: 9})
		var buf bytes.Buffer
		if err := WriteChrome(&buf, c.Events()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(emit(), emit()) {
		t.Fatal("chrome export is not deterministic for identical event streams")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	events := []Event{
		{At: 42, Kind: KindRingFull, Node: -1, Link: -1, Src: 0, Dst: 2},
		{At: 43, Kind: KindPacketSent, Link: 1, Seq: 7, Bytes: 64, Label: "x,y"},
	}
	if err := WriteCSV(&buf, events); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want header + 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "at_ps,kind,") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "ring-full") {
		t.Fatalf("bad row: %q", lines[1])
	}
	if !strings.Contains(lines[2], `"x,y"`) {
		t.Fatalf("comma in label not quoted: %q", lines[2])
	}
}

func TestSnapshotMergeAndKeys(t *testing.T) {
	m := NewMetrics()
	m.Counter(Key{Name: "b"}).Add(2)
	m.Counter(Key{Name: "a", Link: 1}).Add(1)
	m.Gauge(Key{Name: "g"}).Set(3.5)
	s := m.Snapshot()
	other := NewSnapshot()
	other.Counters[Key{Name: "c"}] = 9
	s.Merge(other)
	keys := s.Keys()
	if len(keys) != 3 || keys[0].Name != "a" || keys[2].Name != "c" {
		t.Fatalf("keys = %v", keys)
	}
	if s.Gauges[Key{Name: "g"}] != 3.5 {
		t.Fatal("gauge lost in snapshot")
	}
}

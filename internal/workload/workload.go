// Package workload generates synthetic traffic patterns over a booted
// TCCluster and measures delivered aggregate bandwidth: the network-
// level evaluation that substantiates the paper's scalability claim
// beyond the two-node prototype. Patterns are the classics of
// interconnect evaluation — nearest neighbor (the best case dimension-
// order meshes are built for), transpose (adversarial for dimension-
// order), uniform random, and hotspot (everyone hammers one node).
package workload

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/sim"
)

// Pattern names the destination of each source's flow k.
type Pattern interface {
	Name() string
	// Dest returns the destination node of flow k from src in an
	// n-node cluster, or -1 to skip the flow.
	Dest(src, n, k int) int
}

// NearestNeighbor sends to (src+1) mod n: adjacent in address order,
// adjacent in a chain and mostly adjacent in a row-major mesh.
type NearestNeighbor struct{}

// Name implements Pattern.
func (NearestNeighbor) Name() string { return "nearest-neighbor" }

// Dest implements Pattern.
func (NearestNeighbor) Dest(src, n, k int) int { return (src + 1) % n }

// Transpose pairs (x,y) with (y,x) on a square mesh: every flow crosses
// the diagonal, the adversarial case for dimension-order routing. Nodes
// on the diagonal stay silent.
type Transpose struct{ Width int }

// Name implements Pattern.
func (p Transpose) Name() string { return "transpose" }

// Dest implements Pattern.
func (p Transpose) Dest(src, n, k int) int {
	w := p.Width
	x, y := src%w, src/w
	dst := x*w + y
	if dst == src {
		return -1
	}
	return dst
}

// UniformRandom draws a destination uniformly from the other nodes,
// deterministically per (seed, src, k).
type UniformRandom struct{ Seed uint64 }

// Name implements Pattern.
func (p UniformRandom) Name() string { return "uniform-random" }

// Dest implements Pattern.
func (p UniformRandom) Dest(src, n, k int) int {
	r := sim.NewRand(p.Seed ^ uint64(src*2654435761) ^ uint64(k)<<32)
	d := r.Intn(n - 1)
	if d >= src {
		d++
	}
	return d
}

// HotSpot aims every node at one target.
type HotSpot struct{ Target int }

// Name implements Pattern.
func (p HotSpot) Name() string { return "hotspot" }

// Dest implements Pattern.
func (p HotSpot) Dest(src, n, k int) int {
	if src == p.Target {
		return -1
	}
	return p.Target
}

// Result summarizes one traffic run.
type Result struct {
	Pattern     string
	Flows       int
	TotalBytes  int
	Duration    sim.Time
	AggregateBW float64 // delivered bytes/second across the whole fabric
	// MaxLinkUtil is the busiest link direction's wire-byte utilization
	// over the run: ~1.0 means a saturated bottleneck link.
	MaxLinkUtil float64
}

func (r Result) String() string {
	return fmt.Sprintf("%s: %d flows, %d KB delivered in %v (%.2f GB/s aggregate, busiest link %.0f%%)",
		r.Pattern, r.Flows, r.TotalBytes>>10, r.Duration, r.AggregateBW/1e9, r.MaxLinkUtil*100)
}

// Run drives flowsPerNode flows of bytesPerFlow raw posted-store bytes
// from every node per the pattern and measures the time until the last
// byte lands in destination DRAM. Flows from one node issue through its
// cores round-robin; delivered bytes are counted by write hooks at
// every socket.
func Run(c *core.Cluster, pat Pattern, flowsPerNode, bytesPerFlow int) (Result, error) {
	n := c.N()
	type flow struct{ src, dst, k int }
	var flows []flow
	for src := 0; src < n; src++ {
		for k := 0; k < flowsPerNode; k++ {
			dst := pat.Dest(src, n, k)
			if dst < 0 || dst == src {
				continue
			}
			if dst >= n {
				return Result{}, fmt.Errorf("workload: pattern %s routed %d->%d outside %d nodes",
					pat.Name(), src, dst, n)
			}
			flows = append(flows, flow{src: src, dst: dst, k: k})
		}
	}
	if len(flows) == 0 {
		return Result{}, fmt.Errorf("workload: pattern %s produced no flows", pat.Name())
	}
	total := len(flows) * bytesPerFlow

	// Count landed bytes at every socket of every node. On parallel
	// clusters the hooks fire concurrently from partition workers, so the
	// totals are atomics and each hook reads its own node's clock.
	var landed atomic.Int64
	var lastLand atomic.Int64
	for _, node := range c.Nodes() {
		node := node
		m := node.Machine()
		for s := range m.Procs {
			m.Procs[s].NB.SetWriteHook(func(_ uint64, nBytes int) {
				landed.Add(int64(nBytes))
				now := int64(node.Now())
				for {
					cur := lastLand.Load()
					if now <= cur || lastLand.CompareAndSwap(cur, now) {
						break
					}
				}
			})
		}
	}
	defer func() {
		for _, node := range c.Nodes() {
			m := node.Machine()
			for s := range m.Procs {
				m.Procs[s].NB.SetWriteHook(nil)
			}
		}
	}()

	// Snapshot link counters to compute per-direction utilization.
	links := c.ExternalLinks()
	before := make([][2]uint64, len(links))
	for i, l := range links {
		before[i] = [2]uint64{l.A().Stats().BytesSent, l.B().Stats().BytesSent}
	}

	// Launch: each flow streams into a distinct window of its
	// destination (beyond the UC window), issued by one of the source's
	// cores.
	start := c.Now()
	var errMu sync.Mutex
	var firstErr error
	for i, f := range flows {
		node := c.Node(f.src)
		coreIdx := f.k % node.CoresPerSocket()
		dstBase := c.Node(f.dst).MemBase() + 8<<20 + uint64(i%16)*uint64(bytesPerFlow+64)
		payload := make([]byte, bytesPerFlow)
		src := node.CoreAt(0, coreIdx)
		src.StoreBlock(dstBase, payload, func(err error) {
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				errMu.Unlock()
			}
			src.Sfence(func() {})
		})
	}
	c.Run()
	if firstErr != nil {
		return Result{}, firstErr
	}
	if int(landed.Load()) < total {
		return Result{}, fmt.Errorf("workload: %s delivered %d of %d bytes", pat.Name(), landed.Load(), total)
	}
	dur := sim.Time(lastLand.Load()) - start
	maxUtil := 0.0
	for i, l := range links {
		cap := l.RawBandwidth() * dur.Seconds()
		if cap <= 0 {
			continue
		}
		for side, sent := range [2]uint64{l.A().Stats().BytesSent, l.B().Stats().BytesSent} {
			if u := float64(sent-before[i][side]) / cap; u > maxUtil {
				maxUtil = u
			}
		}
	}
	return Result{
		Pattern:     pat.Name(),
		Flows:       len(flows),
		TotalBytes:  total,
		Duration:    dur,
		AggregateBW: float64(total) / float64(dur) * 1e12,
		MaxLinkUtil: maxUtil,
	}, nil
}

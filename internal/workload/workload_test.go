package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
)

func meshCluster(t *testing.T, w, h int) *core.Cluster {
	t.Helper()
	topo, err := topology.Mesh(w, h)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.SocketsPerNode = 2
	c, err := core.New(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPatternsProduceValidDestinations(t *testing.T) {
	pats := []Pattern{NearestNeighbor{}, Transpose{Width: 4}, UniformRandom{Seed: 1}, HotSpot{Target: 0}}
	const n = 16
	for _, p := range pats {
		for src := 0; src < n; src++ {
			for k := 0; k < 8; k++ {
				d := p.Dest(src, n, k)
				if d == src && d != -1 {
					t.Errorf("%s: Dest(%d)=%d self-send", p.Name(), src, d)
				}
				if d < -1 || d >= n {
					t.Errorf("%s: Dest(%d)=%d out of range", p.Name(), src, d)
				}
			}
		}
	}
}

func TestUniformRandomIsDeterministic(t *testing.T) {
	a, b := UniformRandom{Seed: 9}, UniformRandom{Seed: 9}
	for src := 0; src < 8; src++ {
		for k := 0; k < 8; k++ {
			if a.Dest(src, 8, k) != b.Dest(src, 8, k) {
				t.Fatal("same seed diverged")
			}
		}
	}
	c := UniformRandom{Seed: 10}
	same := true
	for k := 0; k < 16 && same; k++ {
		same = a.Dest(0, 8, k) == c.Dest(0, 8, k)
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestTransposeSkipsDiagonal(t *testing.T) {
	p := Transpose{Width: 4}
	for i := 0; i < 4; i++ {
		if d := p.Dest(i*4+i, 16, 0); d != -1 {
			t.Errorf("diagonal node %d got destination %d", i*4+i, d)
		}
	}
	if d := p.Dest(1, 16, 0); d != 4 {
		t.Errorf("Dest(1) = %d, want 4 ((0,1)->(1,0))", d)
	}
}

func TestRunDeliversAllBytes(t *testing.T) {
	c := meshCluster(t, 2, 2)
	res, err := Run(c, NearestNeighbor{}, 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalBytes != 4*4096 {
		t.Errorf("total = %d", res.TotalBytes)
	}
	if res.AggregateBW <= 0 || res.Duration <= 0 {
		t.Errorf("bad result: %+v", res)
	}
}

// The interconnect-evaluation shape: nearest-neighbor exploits every
// link; hotspot serializes on one node's links and collapses.
func TestHotspotCollapsesVsNeighbor(t *testing.T) {
	cN := meshCluster(t, 3, 3)
	neighbor, err := Run(cN, NearestNeighbor{}, 1, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	cH := meshCluster(t, 3, 3)
	hot, err := Run(cH, HotSpot{Target: 4}, 1, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if hot.AggregateBW >= neighbor.AggregateBW {
		t.Errorf("hotspot %.2f GB/s >= neighbor %.2f GB/s — congestion missing",
			hot.AggregateBW/1e9, neighbor.AggregateBW/1e9)
	}
	// The center node has 4 links; aggregate into it cannot exceed
	// roughly 4 x the per-link bound.
	if hot.AggregateBW > 4*3.0e9 {
		t.Errorf("hotspot %.2f GB/s exceeds the target's link capacity", hot.AggregateBW/1e9)
	}
}

func TestRunRejectsEmptyPattern(t *testing.T) {
	c := meshCluster(t, 2, 2)
	if _, err := Run(c, HotSpot{Target: 99}, 1, 1024); err == nil {
		t.Error("pattern with out-of-range target accepted")
	}
	if _, err := Run(c, Transpose{Width: 2}, 0, 1024); err == nil {
		t.Error("zero flows accepted")
	}
}

// The hotspot pattern must show near-saturation on the busiest link
// into the target, while nearest-neighbor spreads the load.
func TestLinkUtilizationAccounting(t *testing.T) {
	cH := meshCluster(t, 3, 3)
	hot, err := Run(cH, HotSpot{Target: 4}, 1, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if hot.MaxLinkUtil < 0.5 || hot.MaxLinkUtil > 1.05 {
		t.Errorf("hotspot busiest link = %.2f, want near saturation", hot.MaxLinkUtil)
	}
	cN := meshCluster(t, 3, 3)
	nb, err := Run(cN, NearestNeighbor{}, 1, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	if nb.MaxLinkUtil <= 0 || nb.MaxLinkUtil > 1.05 {
		t.Errorf("neighbor busiest link = %.2f", nb.MaxLinkUtil)
	}
}

// End-to-end test of the live-monitoring subsystem: a cluster built
// WithMonitor serves valid Prometheus text over real HTTP while the
// simulation runs, counters only ever move forward between scrapes, the
// watchdog detects an injected dead link, and the auto-dump captures
// the flight-recorder windows leading into the incident.
package tccluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	tccluster "repro"
)

var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\} [-+0-9.eE]+$`)

// scrapeMetrics fetches /metrics, validates every line against the
// Prometheus 0.0.4 text format, and returns each counter series value.
func scrapeMetrics(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("/metrics Content-Type %q lacks text-format version", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	counters := map[string]float64{}
	isCounter := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(string(body), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			isCounter[f[2]] = f[3] == "counter"
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("malformed Prometheus line: %q", line)
		}
		name := line[:strings.IndexByte(line, '{')]
		if isCounter[name] {
			var v float64
			series := line[:strings.LastIndexByte(line, ' ')]
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v)
			counters[series] = v
		}
	}
	return counters
}

func TestMonitorEndToEnd(t *testing.T) {
	topo, err := tccluster.Chain(3)
	if err != nil {
		t.Fatal(err)
	}
	dumpPath := filepath.Join(t.TempDir(), "incident.json")
	alerts := make(chan tccluster.Alert, 64)
	c, err := tccluster.New(topo, tccluster.DefaultConfig(),
		tccluster.WithTracer(tccluster.NewCollector(1<<14)),
		tccluster.WithMonitor("127.0.0.1:0",
			tccluster.MonitorSampleEvery(20*tccluster.Microsecond),
			tccluster.MonitorOnAlert(func(a tccluster.Alert) {
				select {
				case alerts <- a:
				default:
				}
			}),
			tccluster.MonitorAutoDump(dumpPath)))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	addr := c.Monitor().Addr()
	if addr == "" {
		t.Fatal("WithMonitor(addr) did not bind a listener")
	}

	// Traffic across both links of the chain: 0 -> 2 echoed back by 2.
	s02, r02, err := c.OpenChannel(0, 2, tccluster.DefaultMsgParams())
	if err != nil {
		t.Fatal(err)
	}
	s20, r20, err := c.OpenChannel(2, 0, tccluster.DefaultMsgParams())
	if err != nil {
		t.Fatal(err)
	}
	var echo func()
	echo = func() {
		r02.Recv(func(d []byte, err error) {
			if err != nil {
				return
			}
			s20.Send(d, func(error) {})
			echo()
		})
	}
	echo()
	runRounds := func(rounds int) {
		done := 0
		var round func(i int)
		round = func(i int) {
			if i >= rounds {
				return
			}
			r20.Recv(func(_ []byte, err error) {
				if err != nil {
					return
				}
				done++
				round(i + 1)
			})
			s02.Send(make([]byte, 256), func(error) {})
		}
		round(0)
		c.RunFor(5 * tccluster.Millisecond)
		if done != rounds {
			t.Fatalf("completed %d of %d rounds", done, rounds)
		}
	}

	// Scrape concurrently with the running simulation: the scrape path
	// must be race-free against the sim goroutine (this test runs under
	// -race in CI) and must not perturb it.
	var wg sync.WaitGroup
	scrapeErrs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 5 * time.Second}
		for i := 0; i < 10; i++ {
			for _, path := range []string{"/metrics", "/metrics.json", "/health"} {
				resp, err := client.Get("http://" + addr + path)
				if err != nil {
					select {
					case scrapeErrs <- err:
					default:
					}
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	runRounds(100)
	wg.Wait()
	select {
	case err := <-scrapeErrs:
		t.Fatalf("concurrent scrape failed: %v", err)
	default:
	}

	first := scrapeMetrics(t, addr)
	if len(first) == 0 {
		t.Fatal("no counter series scraped")
	}
	for _, want := range []string{"tcc_port_pkts_sent", "tcc_port_pkts_recv", "tcc_nb_pkts_forwarded"} {
		found := false
		for series := range first {
			if strings.HasPrefix(series, want+"{") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s series in scrape", want)
		}
	}
	runRounds(100)
	second := scrapeMetrics(t, addr)
	for series, v1 := range first {
		v2, ok := second[series]
		if !ok {
			t.Errorf("counter series %s disappeared between scrapes", series)
			continue
		}
		if v2 < v1 {
			t.Errorf("counter %s went backwards: %g -> %g", series, v1, v2)
		}
	}

	// Inject a dead link (cable pull). Keep virtual time moving with the
	// still-polling receivers so sampling windows keep closing; the
	// dead-link rule needs its sustain count of down windows.
	c.ExternalLinks()[0].ForceDown()
	for i := 0; i < 4; i++ {
		s02.Send(make([]byte, 64), func(error) {}) // failing send attempts
	}
	c.RunFor(2 * tccluster.Millisecond)

	var dead *tccluster.Alert
drain:
	for {
		select {
		case a := <-alerts:
			if a.Rule == "dead-link" && a.Active() {
				dead = &a
				break drain
			}
		default:
			break drain
		}
	}
	if dead == nil {
		t.Fatal("watchdog did not raise a dead-link alert after ForceDown")
	}

	// The monitor must now report degraded health...
	resp, err := http.Get("http://" + addr + "/health")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/health status %d with an active alert, want 503", resp.StatusCode)
	}
	// ...and list the alert.
	resp, err = http.Get("http://" + addr + "/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Active []tccluster.Alert `json:"active"`
	}
	err = json.NewDecoder(resp.Body).Decode(&doc)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range doc.Active {
		if a.Rule == "dead-link" {
			found = true
		}
	}
	if !found {
		t.Fatalf("/alerts active = %+v, want a dead-link alert", doc.Active)
	}

	// The auto-dump captured the windows leading INTO the incident.
	raw, err := os.ReadFile(dumpPath)
	if err != nil {
		t.Fatalf("auto-dump file missing: %v", err)
	}
	var dump struct {
		Reason  string `json:"reason"`
		Windows []struct {
			StartPS int64 `json:"start_ps"`
			EndPS   int64 `json:"end_ps"`
		} `json:"windows"`
	}
	if err := json.Unmarshal(raw, &dump); err != nil {
		t.Fatalf("auto-dump is not valid JSON: %v", err)
	}
	if !strings.HasPrefix(dump.Reason, "alert:") {
		t.Fatalf("dump reason %q, want alert trigger", dump.Reason)
	}
	if len(dump.Windows) < 2 {
		t.Fatalf("dump has %d windows, want pre-incident history", len(dump.Windows))
	}
	if got := tccluster.Time(dump.Windows[0].StartPS); got >= dead.RaisedAt {
		t.Fatalf("oldest dumped window starts at %v, not before the alert at %v",
			got, dead.RaisedAt)
	}

	r02.Stop()
	r20.Stop()
	c.Run()
}

// TestMonitorEndToEndParallel runs the monitoring stack against the
// partitioned parallel engine: Prometheus scrapes race the worker
// goroutines (this test runs under -race in CI), counters stay
// monotone, and a cable pull on an intra-partition link still raises
// the dead-link watchdog — sampling and shard merging happen at window
// barriers, so the whole observability path must stay correct when the
// simulation is spread across partitions.
func TestMonitorEndToEndParallel(t *testing.T) {
	topo, err := tccluster.Chain(4)
	if err != nil {
		t.Fatal(err)
	}
	alerts := make(chan tccluster.Alert, 64)
	c, err := tccluster.New(topo, tccluster.DefaultConfig(),
		tccluster.WithParallel(2),
		tccluster.WithTracer(tccluster.NewCollector(1<<14)),
		tccluster.WithMonitor("127.0.0.1:0",
			tccluster.MonitorSampleEvery(20*tccluster.Microsecond),
			tccluster.MonitorOnAlert(func(a tccluster.Alert) {
				select {
				case alerts <- a:
				default:
				}
			})))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.Partitions(); got != 2 {
		t.Fatalf("Partitions() = %d, want 2", got)
	}
	addr := c.Monitor().Addr()

	// Traffic across the partition cut: 0 -> 3 echoed back by 3.
	s03, r03, err := c.OpenChannel(0, 3, tccluster.DefaultMsgParams())
	if err != nil {
		t.Fatal(err)
	}
	s30, r30, err := c.OpenChannel(3, 0, tccluster.DefaultMsgParams())
	if err != nil {
		t.Fatal(err)
	}
	var echo func()
	echo = func() {
		r03.Recv(func(d []byte, err error) {
			if err != nil {
				return
			}
			s30.Send(d, func(error) {})
			echo()
		})
	}
	echo()
	runRounds := func(rounds int) {
		var done atomic.Int64
		var round func(i int)
		round = func(i int) {
			if i >= rounds {
				return
			}
			r30.Recv(func(_ []byte, err error) {
				if err != nil {
					return
				}
				done.Add(1)
				round(i + 1)
			})
			s03.Send(make([]byte, 256), func(error) {})
		}
		round(0)
		c.RunFor(5 * tccluster.Millisecond)
		if done.Load() != int64(rounds) {
			t.Fatalf("completed %d of %d rounds", done.Load(), rounds)
		}
	}

	// Scrape all endpoints concurrently with the running partitions.
	var wg sync.WaitGroup
	scrapeErrs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 5 * time.Second}
		for i := 0; i < 10; i++ {
			for _, path := range []string{"/metrics", "/metrics.json", "/health"} {
				resp, err := client.Get("http://" + addr + path)
				if err != nil {
					select {
					case scrapeErrs <- err:
					default:
					}
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}
	}()
	runRounds(100)
	wg.Wait()
	select {
	case err := <-scrapeErrs:
		t.Fatalf("concurrent scrape failed: %v", err)
	default:
	}

	first := scrapeMetrics(t, addr)
	if len(first) == 0 {
		t.Fatal("no counter series scraped")
	}
	runRounds(100)
	second := scrapeMetrics(t, addr)
	for series, v1 := range first {
		v2, ok := second[series]
		if !ok {
			t.Errorf("counter series %s disappeared between scrapes", series)
			continue
		}
		if v2 < v1 {
			t.Errorf("counter %s went backwards: %g -> %g", series, v1, v2)
		}
	}

	// Pull an intra-partition cable while the cross-cut channel keeps
	// polling so sample windows keep closing. Link 0 joins chain nodes
	// 0 and 1, both in partition 0; ForceDown mutates port state, so it
	// must happen between runs, while every worker is parked.
	if c.Partition(0) != c.Partition(1) {
		t.Fatal("chain link 0 unexpectedly crosses the partition cut")
	}
	c.ExternalLinks()[0].ForceDown()
	for i := 0; i < 4; i++ {
		s03.Send(make([]byte, 64), func(error) {}) // failing send attempts
	}
	c.RunFor(2 * tccluster.Millisecond)

	var dead *tccluster.Alert
drain:
	for {
		select {
		case a := <-alerts:
			if a.Rule == "dead-link" && a.Active() {
				dead = &a
				break drain
			}
		default:
			break drain
		}
	}
	if dead == nil {
		t.Fatal("watchdog did not raise a dead-link alert after ForceDown")
	}
	resp, err := http.Get("http://" + addr + "/health")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/health status %d with an active alert, want 503", resp.StatusCode)
	}

	r03.Stop()
	r30.Stop()
	c.Run()
}

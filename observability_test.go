// Tests for the observability layer's public surface: functional
// options, sentinel errors, the metrics snapshot, and the determinism
// contract (same topology + Config + Seed => byte-identical traces).
package tccluster_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	tccluster "repro"
)

// pingPong runs rounds of size-byte ping-pong between the ends of an
// n-node chain cluster and fails the test if any round is lost.
func pingPong(t testing.TB, c *tccluster.Cluster, n, rounds, size int) {
	t.Helper()
	last := n - 1
	sAB, rAB, err := c.OpenChannel(0, last, tccluster.DefaultMsgParams())
	if err != nil {
		t.Fatal(err)
	}
	sBA, rBA, err := c.OpenChannel(last, 0, tccluster.DefaultMsgParams())
	if err != nil {
		t.Fatal(err)
	}
	var serve func()
	serve = func() {
		rAB.Recv(func(d []byte, err error) {
			if err != nil {
				return
			}
			sBA.Send(d, func(error) {})
			serve()
		})
	}
	serve()
	done := 0
	var round func(i int)
	round = func(i int) {
		if i >= rounds {
			return
		}
		rBA.Recv(func(_ []byte, err error) {
			if err != nil {
				return
			}
			done++
			round(i + 1)
		})
		sAB.Send(make([]byte, size), func(error) {})
	}
	round(0)
	c.RunFor(10 * tccluster.Millisecond)
	rAB.Stop()
	rBA.Stop()
	c.Run()
	if done != rounds {
		t.Fatalf("completed %d of %d ping-pong rounds", done, rounds)
	}
}

// tracedRun boots a seeded, fault-injecting chain with a collector
// installed, runs a ping-pong, and returns the serialized event stream.
func tracedRun(t testing.TB, seed uint64) []byte {
	t.Helper()
	topo, err := tccluster.Chain(3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tccluster.DefaultConfig()
	cfg.CableErrorRate = 0.05 // exercise the stochastic retry path
	col := tccluster.NewCollector(1 << 16)
	c, err := tccluster.New(topo, cfg,
		tccluster.WithTracer(col),
		tccluster.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	pingPong(t, c, 3, 4, 128)
	if col.Dropped() > 0 {
		t.Fatalf("collector dropped %d events; raise capacity", col.Dropped())
	}
	var buf bytes.Buffer
	if err := tccluster.WriteCSVTrace(&buf, col.Events()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The determinism regression: identical topology, Config and Seed must
// reproduce a byte-identical event stream even with fault injection on.
func TestTraceDeterministicReplay(t *testing.T) {
	first := tracedRun(t, 7)
	second := tracedRun(t, 7)
	if len(first) == 0 {
		t.Fatal("traced run produced no events")
	}
	if !bytes.Equal(first, second) {
		t.Fatal("same seed produced different event streams")
	}
}

// Different seeds must shift the fault stream (otherwise WithSeed is a
// no-op and the replay test above proves nothing).
func TestTraceSeedChangesFaultStream(t *testing.T) {
	if bytes.Equal(tracedRun(t, 7), tracedRun(t, 8)) {
		t.Fatal("different seeds produced identical event streams")
	}
}

func TestMetricsSnapshot(t *testing.T) {
	topo, err := tccluster.Chain(3)
	if err != nil {
		t.Fatal(err)
	}
	col := tccluster.NewCollector(1 << 16)
	c, err := tccluster.New(topo, tccluster.DefaultConfig(),
		tccluster.WithTracer(col))
	if err != nil {
		t.Fatal(err)
	}
	pingPong(t, c, 3, 2, 64)

	s := c.Metrics()
	var sent uint64
	for k, v := range s.Counters {
		if k.Name == "port.pkts_sent" {
			sent += v
		}
	}
	if sent == 0 {
		t.Error("no port.pkts_sent counters after a ping-pong")
	}
	if _, ok := s.Histograms[tccluster.MetricKey{Name: "link.packet_latency_ps", Link: 0}]; !ok {
		t.Error("no link.packet_latency_ps histogram for link 0")
	}
	var boots uint64
	for k, v := range s.Counters {
		if k.Name == "events.boot-phase" {
			boots += v
		}
	}
	if boots == 0 {
		t.Error("no boot-phase events counted")
	}
}

// Tracing must also flow through the deprecated kernel-options entry
// point, and the Chrome export of a real run must be valid JSON.
func TestChromeExportValidJSON(t *testing.T) {
	topo, err := tccluster.Chain(2)
	if err != nil {
		t.Fatal(err)
	}
	col := tccluster.NewCollector(1 << 14)
	c, err := tccluster.New(topo, tccluster.DefaultConfig(),
		tccluster.WithTracer(col),
		tccluster.WithKernelOptions(tccluster.KernelOptions{SMCDisabled: true}))
	if err != nil {
		t.Fatal(err)
	}
	pingPong(t, c, 2, 2, 64)
	var buf bytes.Buffer
	if err := tccluster.WriteChromeTrace(&buf, col.Events()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export contains no events")
	}
}

func TestSentinelErrors(t *testing.T) {
	if _, err := tccluster.Chain(1); !errors.Is(err, tccluster.ErrBadConfig) {
		t.Errorf("Chain(1) error = %v, want ErrBadConfig", err)
	}

	ring, err := tccluster.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ring.CheckDeadlockFree(); !errors.Is(err, tccluster.ErrDeadlockTopology) {
		t.Errorf("Ring(4).CheckDeadlockFree() = %v, want ErrDeadlockTopology", err)
	}
	if err := ring.CheckIntervalRoutable(0); !errors.Is(err, tccluster.ErrUnroutable) {
		t.Errorf("CheckIntervalRoutable(0) = %v, want ErrUnroutable", err)
	}

	topo, err := tccluster.Chain(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := tccluster.New(topo, tccluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A ring larger than the whole UC window cannot be hosted.
	par := tccluster.DefaultMsgParams()
	par.RingBytes = 2 * tccluster.DefaultConfig().UCWindow
	par.FCThreshold = par.RingBytes / 4
	if _, _, err := c.OpenChannel(0, 1, par); !errors.Is(err, tccluster.ErrRingFull) {
		t.Errorf("oversized ring error = %v, want ErrRingFull", err)
	}

	cfg := tccluster.DefaultConfig()
	cfg.SocketsPerNode = -1
	if _, err := tccluster.New(topo, cfg); !errors.Is(err, tccluster.ErrBadConfig) {
		t.Errorf("SocketsPerNode=-1 error = %v, want ErrBadConfig", err)
	}
}

// End-to-end tests of the simulation profiler: WithProfile must
// observe without perturbing — profiled runs reproduce unprofiled
// event counts, virtual time and link counters exactly, on every
// executor — while still attributing the full packet lifecycle into
// the paper-style latency budget, and serving it live over /profile
// race-free against the sim goroutine.
package tccluster_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	tccluster "repro"
)

// TestProfileDoesNotPerturbDeterminism is the profiler's determinism
// gate: for every example-shaped workload, attaching the profiler —
// serially and on the partitioned executor — must leave the event
// count, final virtual time and every per-link counter exactly as the
// unprofiled serial run produced them. The profiler only loads clocks
// and stores histogram words; it schedules nothing.
func TestProfileDoesNotPerturbDeterminism(t *testing.T) {
	scenarios := []struct {
		name string
		run  func(*testing.T, ...tccluster.Option) queueFingerprint
	}{
		{"quickstart-chain2", quickstartRun},
		{"allreduce-chain4", allreduceRun},
		{"halo-chain3", haloRun},
		{"pgas-chain4", pgasRun},
		{"cluster16-mesh4x4", meshRun},
		{"failures-lossy-chain2", lossyRun},
		{"fault-recovery-chain4", faultRecoveryRun},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			plain := sc.run(t)
			variants := []struct {
				name string
				opts []tccluster.Option
			}{
				{"profiled-serial", []tccluster.Option{tccluster.WithProfile()}},
				{"profiled-parallel2", []tccluster.Option{
					tccluster.WithProfile(), tccluster.WithParallel(2)}},
			}
			for _, v := range variants {
				got := sc.run(t, v.opts...)
				if got.fired != plain.fired {
					t.Errorf("%s: event count diverged: plain %d, profiled %d",
						v.name, plain.fired, got.fired)
				}
				if got.now != plain.now {
					t.Errorf("%s: final virtual time diverged: plain %v, profiled %v",
						v.name, plain.now, got.now)
				}
				if !reflect.DeepEqual(got.links, plain.links) {
					t.Errorf("%s: per-link counters diverged:\nplain:    %+v\nprofiled: %+v",
						v.name, plain.links, got.links)
				}
			}
		})
	}
}

// profiledAllreduce runs a profiled allreduce over a chain and returns
// the cluster's summary.
func profiledAllreduce(t *testing.T, nodes int, opts ...tccluster.Option) *tccluster.ProfileSummary {
	t.Helper()
	topo, err := tccluster.Chain(nodes)
	mustOK(t, err)
	opts = append([]tccluster.Option{tccluster.WithProfile()}, opts...)
	c, err := tccluster.New(topo, tccluster.DefaultConfig(), opts...)
	mustOK(t, err)
	w, err := c.NewWorld(tccluster.DefaultMPIConfig())
	mustOK(t, err)
	var pending atomic.Int64
	pending.Store(int64(nodes))
	vec := make([]float64, 64)
	for rk := 0; rk < nodes; rk++ {
		w.Rank(rk).Allreduce(vec, tccluster.Sum, func(_ []float64, err error) {
			mustOK(t, err)
			pending.Add(-1)
		})
	}
	c.Run()
	if pending.Load() != 0 {
		t.Fatalf("allreduce: %d ranks incomplete", pending.Load())
	}
	s := c.Profile()
	if s == nil {
		t.Fatal("Profile() returned nil on a WithProfile cluster")
	}
	return s
}

// TestProfileBudgetDeterministicAcrossExecutors pins the virtual-time
// half of the summary: a profiled workload attributes identical phase
// counts, totals and quantiles whether it ran serially or partitioned.
// Only the PDES wall-clock accounting may differ between executors.
func TestProfileBudgetDeterministicAcrossExecutors(t *testing.T) {
	serial := profiledAllreduce(t, 4)
	par := profiledAllreduce(t, 4, tccluster.WithParallel(2))
	if !reflect.DeepEqual(serial.Budget, par.Budget) {
		t.Errorf("budget diverged:\nserial:   %+v\nparallel: %+v", serial.Budget, par.Budget)
	}
	if !reflect.DeepEqual(serial.Links, par.Links) {
		t.Errorf("per-link phases diverged:\nserial:   %+v\nparallel: %+v", serial.Links, par.Links)
	}
	if !reflect.DeepEqual(serial.Nodes, par.Nodes) {
		t.Errorf("per-node phases diverged:\nserial:   %+v\nparallel: %+v", serial.Nodes, par.Nodes)
	}
	if !reflect.DeepEqual(serial.CriticalPath, par.CriticalPath) {
		t.Errorf("critical path diverged:\nserial:   %+v\nparallel: %+v",
			serial.CriticalPath, par.CriticalPath)
	}
	if serial.PDES != nil {
		t.Errorf("serial run reported PDES accounting: %+v", serial.PDES)
	}
	if par.PDES == nil {
		t.Errorf("parallel run reported no PDES accounting")
	}
}

// TestProfiledAllreduceChain16EmitsBudget is the acceptance workload:
// a profiled parallel allreduce on chain16 must attribute every
// pipeline stage a packet crosses — link serialization and flight,
// crossbar, routing hops, memory service, store issue, WC flush,
// receiver polling — rank the bottleneck hop, and account per-partition
// barrier stall and imbalance.
func TestProfiledAllreduceChain16EmitsBudget(t *testing.T) {
	s := profiledAllreduce(t, 16, tccluster.WithParallel(4))
	phases := map[string]bool{}
	for _, p := range s.Budget {
		if p.Count == 0 {
			t.Errorf("budget phase %s present with zero count", p.Phase)
		}
		if p.TotalPS == 0 && p.Phase != "link.queue" {
			t.Errorf("budget phase %s attributed zero time over %d observations", p.Phase, p.Count)
		}
		phases[p.Phase] = true
	}
	for _, want := range []string{
		"link.queue", "link.ser", "link.flight",
		"nb.xbar", "nb.hop", "mem.service",
		"cpu.issue", "cpu.wcflush", "msg.poll",
	} {
		if !phases[want] {
			t.Errorf("budget missing phase %s (got %v)", want, s.Budget)
		}
	}
	if len(s.Links) != 15 {
		t.Errorf("expected 15 profiled links on chain16, got %d", len(s.Links))
	}
	if len(s.CriticalPath) == 0 {
		t.Errorf("critical-path ranking is empty")
	} else if s.CriticalPath[0].SharePct <= 0 || s.CriticalPath[0].Dominant == "" {
		t.Errorf("critical hop lacks share/dominant phase: %+v", s.CriticalPath[0])
	}
	p := s.PDES
	if p == nil {
		t.Fatal("parallel profiled run reported no PDES accounting")
	}
	if len(p.Partitions) != 4 {
		t.Fatalf("expected 4 partition summaries, got %d", len(p.Partitions))
	}
	if p.Windows == 0 || p.Imbalance < 1 || p.Occupancy <= 0 {
		t.Errorf("implausible PDES accounting: windows %d imbalance %.2f occupancy %.2f",
			p.Windows, p.Imbalance, p.Occupancy)
	}
	var events uint64
	for _, pt := range p.Partitions {
		events += pt.Events
		if pt.BarrierWaitMS < 0 {
			t.Errorf("partition %d: negative barrier wait %.3fms", pt.Partition, pt.BarrierWaitMS)
		}
	}
	if events == 0 {
		t.Errorf("PDES accounting fired zero events across partitions")
	}
	if len(p.MailboxPosts) != 4 {
		t.Errorf("mailbox traffic matrix is %dx?, want 4x4", len(p.MailboxPosts))
	}
}

// TestProfileEndpointScrapeMidRun scrapes /profile (JSON and
// Prometheus) while the simulation is executing on another goroutine:
// the snapshot path must be race-free (this test runs under -race in
// CI) and must not perturb the run.
func TestProfileEndpointScrapeMidRun(t *testing.T) {
	topo, err := tccluster.Chain(4)
	mustOK(t, err)
	c, err := tccluster.New(topo, tccluster.DefaultConfig(),
		tccluster.WithProfile(),
		tccluster.WithMonitor("127.0.0.1:0"))
	mustOK(t, err)
	defer c.Close()
	addr := c.Monitor().Addr()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	scrapeErrs := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		client := &http.Client{Timeout: 5 * time.Second}
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, q := range []string{"", "?format=prometheus"} {
				resp, err := client.Get("http://" + addr + "/profile" + q)
				if err != nil {
					select {
					case scrapeErrs <- err:
					default:
					}
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					continue
				}
				if q == "" {
					var s tccluster.ProfileSummary
					if err := json.Unmarshal(body, &s); err != nil {
						select {
						case scrapeErrs <- err:
						default:
						}
						return
					}
				} else if !strings.Contains(string(body), "tcc_prof_") {
					select {
					case scrapeErrs <- fmt.Errorf("prometheus scrape lacks tcc_prof_ series: %q", body):
					default:
					}
					return
				}
			}
		}
	}()

	w, err := c.NewWorld(tccluster.DefaultMPIConfig())
	mustOK(t, err)
	vec := make([]float64, 64)
	for round := 0; round < 20; round++ {
		var pending atomic.Int64
		pending.Store(4)
		for rk := 0; rk < 4; rk++ {
			w.Rank(rk).Allreduce(vec, tccluster.Sum, func(_ []float64, err error) {
				mustOK(t, err)
				pending.Add(-1)
			})
		}
		c.Run()
		if pending.Load() != 0 {
			t.Fatalf("round %d: %d ranks incomplete", round, pending.Load())
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-scrapeErrs:
		t.Fatalf("scraping /profile mid-run: %v", err)
	default:
	}

	// After the run the served document must match the cluster's own.
	resp, err := http.Get("http://" + addr + "/profile")
	mustOK(t, err)
	defer resp.Body.Close()
	var served tccluster.ProfileSummary
	mustOK(t, json.NewDecoder(resp.Body).Decode(&served))
	if len(served.Budget) == 0 {
		t.Fatal("/profile served an empty budget after a profiled run")
	}
	local := c.Profile()
	if !reflect.DeepEqual(served.Budget, local.Budget) {
		t.Errorf("/profile budget differs from Cluster.Profile():\nserved: %+v\nlocal:  %+v",
			served.Budget, local.Budget)
	}
}

// Package tccluster is a full-system reproduction of
//
//	H. Litz, M. Thuermer, U. Bruening: "TCCluster: A Cluster
//	Architecture Utilizing the Processor Host Interface as a Network
//	Interconnect", IEEE CLUSTER 2010.
//
// TCCluster turns the AMD Opteron's HyperTransport processor interface
// into the cluster interconnect itself: no NICs, no switches — a debug
// register forces processor-to-processor links into non-coherent mode at
// a warm reset, every node claims NodeID 0 so the northbridge's MMIO
// base/limit registers route remote addresses straight out a link, and
// all communication is remote posted stores into uncachable ring
// buffers.
//
// Because the original artifact is BIOS firmware and a kernel driver for
// 2010-era hardware, this library re-creates the entire stack as a
// deterministic discrete-event simulation — HT links with credit flow
// control and training, the register-accurate northbridge address maps,
// write-combining CPU store paths, the coreboot-style boot sequence, the
// custom-kernel driver model, and the polling message library — plus the
// MPI and PGAS middleware the paper names as next steps, and a live
// goroutine backend (LiveChannel) implementing the same ring protocol on
// real memory for wall-clock benchmarks.
//
// Quick start:
//
//	topo, _ := tccluster.Chain(2)
//	c, err := tccluster.New(topo, tccluster.DefaultConfig())
//	if err != nil { ... }
//	s, r, _ := c.OpenChannel(0, 1, tccluster.DefaultMsgParams())
//	r.Recv(func(data []byte, err error) { fmt.Printf("%s\n", data) })
//	s.Send([]byte("hello over the host interface"), func(error) {})
//	c.Run()
//
// The cluster runs in virtual time: Run drains all pending events,
// RunFor advances the clock by a bounded amount (use it when pollers may
// spin forever, e.g. a barrier some node never enters).
package tccluster

import (
	"repro/internal/core"
	"repro/internal/errs"
	"repro/internal/fault"
	"repro/internal/ht"
	"repro/internal/kernel"
	"repro/internal/monitor"
	"repro/internal/mpi"
	"repro/internal/msg"
	"repro/internal/pgas"
	"repro/internal/prof"
	"repro/internal/serve"
	"repro/internal/shm"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Re-exported core types. Aliases keep the full method sets usable by
// importers of this package.
type (
	// Topology is an interconnect graph with routing (see Chain, Mesh,
	// Ring, FullyConnected, Hypercube).
	Topology = topology.Topology
	// Config selects memory size, sockets per node, link speed/width and
	// the hardware model parameters.
	Config = core.Config
	// Node is one booted supernode.
	Node = core.Node
	// Time is virtual time in picoseconds.
	Time = sim.Time
	// LinkSpeed is an HT link clock (HT200..HT2600).
	LinkSpeed = ht.Speed

	// KernelOptions configure the per-node OS (SMC suppression, driver
	// export window).
	KernelOptions = kernel.Options
	// Window is a driver mapping of local or remote memory.
	Window = kernel.Window

	// MsgParams configure a message channel (ring size, flow control,
	// rendezvous region).
	MsgParams = msg.Params
	// Sender is the producing end of a message channel.
	Sender = msg.Sender
	// Receiver is the polling end of a message channel.
	Receiver = msg.Receiver

	// MPIConfig configures an MPI world.
	MPIConfig = mpi.Config
	// World is an MPI world over the cluster.
	World = mpi.World
	// Comm is one MPI rank's communicator.
	Comm = mpi.Comm

	// PGASConfig configures a global address space.
	PGASConfig = pgas.Config
	// Space is a partitioned global address space.
	Space = pgas.Space

	// ServeConfig shapes a replicated KV/query serving deployment
	// (shards, replicas, arrival process, admission, routing policy,
	// SLO).
	ServeConfig = serve.Config
	// Service is a sharded, replicated serving deployment over the
	// cluster's message fabric; build one with NewService.
	Service = serve.Service
	// ServePolicy selects how serve clients spread reads over replicas.
	ServePolicy = serve.Policy
	// ServeReport is a completed serving run's merged outcome: latency
	// quantiles, goodput, shed/timeout counters, the failover story.
	ServeReport = serve.Report
	// ServeWindow is one goodput accounting window of a ServeReport.
	ServeWindow = serve.Window
	// ServeSnapshot is the cheap mid-run view the monitor scrapes.
	ServeSnapshot = serve.Snapshot

	// LiveParams configure a live (goroutine) channel.
	LiveParams = shm.Params
	// LiveSender is the producing end of a live channel.
	LiveSender = shm.Sender
	// LiveReceiver is the consuming end of a live channel.
	LiveReceiver = shm.Receiver

	// Tracer consumes observability events from every layer of the
	// cluster. Install one with WithTracer; nil (the default) disables
	// tracing at the cost of one branch per potential emission.
	Tracer = trace.Tracer
	// Collector is the standard Tracer: a bounded ring buffer with
	// derived metrics and Chrome-trace/CSV export.
	Collector = trace.Collector
	// TraceEvent is one typed observation (packet sent, credit stall,
	// barrier enter, boot phase ...).
	TraceEvent = trace.Event
	// TraceKind tags a TraceEvent.
	TraceKind = trace.Kind
	// MetricKey identifies one metric (name plus node/link/channel).
	MetricKey = trace.Key
	// MetricsSnapshot is a point-in-time copy of every counter, gauge
	// and histogram — what Cluster.Metrics returns.
	MetricsSnapshot = trace.Snapshot

	// Profiler attributes packet lifecycle time to pipeline phases and
	// accounts PDES runtime. Install one with WithProfile; read it back
	// with Cluster.Profile.
	Profiler = prof.Profiler
	// ProfileOption customizes WithProfile (currently ProfileSpans).
	ProfileOption = prof.Option
	// ProfileSummary is the renderable latency budget a profiled run
	// produces: per-phase histograms, per-link/per-node breakdowns, the
	// critical-path ranking and (parallel runs) PDES accounting. It
	// marshals to JSON and renders with WriteText/WritePrometheus.
	ProfileSummary = prof.Summary
	// ProfilePhaseStats is one phase's aggregate inside a
	// ProfileSummary.
	ProfilePhaseStats = prof.PhaseStats

	// Monitor is the live-monitoring subsystem: /metrics HTTP endpoint,
	// flight recorder, alert watchdog. Install one with WithMonitor.
	Monitor = monitor.Monitor
	// MonitorOption customizes WithMonitor (sampling window, recorder
	// depth, watchdog rules, alert callbacks, auto-dump path).
	MonitorOption = monitor.Option
	// Alert is one raised watchdog incident.
	Alert = monitor.Alert
	// WatchdogRule is a pluggable health rule evaluated against each
	// sampling window.
	WatchdogRule = monitor.Rule
	// RecorderWindow is one closed flight-recorder sampling window.
	RecorderWindow = monitor.Window

	// FaultAction is one scripted fault (see LinkDegrade, LinkDown,
	// LinkFlap, RetrainStorm, NodeCrash and friends). Pass them to
	// WithFaults.
	FaultAction = fault.Action
	// FaultCampaign is an immutable script of fault actions.
	FaultCampaign = fault.Campaign
	// FaultInjector replays a campaign against the booted cluster;
	// Cluster.Faults returns it for stats inspection.
	FaultInjector = fault.Injector
	// FaultStats counts what the injector has applied so far.
	FaultStats = fault.Stats
)

// Typed sentinel errors. Constructors and channel operations wrap these
// with %w, so callers classify failures with errors.Is instead of
// matching message strings.
var (
	// ErrUnroutable: the topology's routing cannot reach every node, or
	// needs more address intervals than the northbridge provides.
	ErrUnroutable = errs.ErrUnroutable
	// ErrRingFull: the uncachable receive window cannot host another
	// ring or flow-control slot (endpoint scalability, paper §IV.A).
	ErrRingFull = errs.ErrRingFull
	// ErrDeadlockTopology: single-VC posted traffic over this routing
	// could deadlock (cyclic channel-dependency graph).
	ErrDeadlockTopology = errs.ErrDeadlockTopology
	// ErrBadConfig: an out-of-range size, socket count, ring parameter
	// or malformed topology-constructor argument.
	ErrBadConfig = errs.ErrBadConfig
	// ErrPeerDead: a reliable channel exhausted its retransmit budget
	// without an acknowledgment — every path to the peer is presumed
	// gone. MPI surfaces it as the process-failure signal.
	ErrPeerDead = errs.ErrPeerDead
)

// Fault-action constructors, re-exported for WithFaults. Times are
// absolute virtual times; actions landing before boot finishes are
// deferred to the first instant after it.
var (
	// LinkDegrade raises an external link's runtime CRC error rate for a
	// duration (0 = forever) — the marginal-cable model.
	LinkDegrade = fault.LinkDegrade
	// LinkDegradeWithPenalty is LinkDegrade with an explicit
	// resync-and-replay penalty per corrupted packet.
	LinkDegradeWithPenalty = fault.LinkDegradeWithPenalty
	// LinkDown pulls an external link's cable, permanently.
	LinkDown = fault.LinkDown
	// LinkDownFor pulls the cable and re-seats it after a duration (the
	// link retrains and carries traffic again one TrainTime later).
	LinkDownFor = fault.LinkDownFor
	// LinkFlap oscillates a link between dead and retraining — the
	// half-seated connector.
	LinkFlap = fault.LinkFlap
	// RetrainStorm repeatedly asserts warm reset on a link.
	RetrainStorm = fault.RetrainStorm
	// NodeCrash fail-stops a node: every external cable drops at once.
	NodeCrash = fault.NodeCrash
	// NodeCrashFor fail-stops a node and warm-resets it back in after a
	// duration.
	NodeCrashFor = fault.NodeCrashFor
)

// NewCollector returns a Collector keeping the most recent capacity
// events (minimum 16).
func NewCollector(capacity int) *Collector { return trace.NewCollector(capacity) }

// WriteChromeTrace renders events as Chrome trace_event JSON, viewable
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
var WriteChromeTrace = trace.WriteChrome

// WriteCSVTrace renders events as CSV, one event per row.
var WriteCSVTrace = trace.WriteCSV

// Link clocks, re-exported. HT800 (1.6 Gbit/s/lane) is the prototype's
// cable-limited rate; HT2600 is the Shanghai ceiling.
const (
	HT200  = ht.HT200
	HT400  = ht.HT400
	HT800  = ht.HT800
	HT1000 = ht.HT1000
	HT2400 = ht.HT2400
	HT2600 = ht.HT2600
)

// Nanosecond and friends let callers express virtual durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
)

// Topology constructors.
var (
	// Chain builds a 1-D chain (the prototype shape).
	Chain = topology.Chain
	// Ring builds a 1-D ring (a deliberate deadlock-checker example).
	Ring = topology.Ring
	// Mesh builds a w x h mesh with Y-first interval routing.
	Mesh = topology.Mesh
	// Torus builds a w x h torus (more intervals, deadlock-flagged).
	Torus = topology.Torus
	// FullyConnected builds an all-to-all graph (max 5 nodes).
	FullyConnected = topology.FullyConnected
	// Hypercube builds a d-dimensional hypercube (d <= 4).
	Hypercube = topology.Hypercube
)

// DefaultConfig returns the prototype-faithful hardware configuration.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultMsgParams returns the paper's message-library configuration
// (4 KB rings).
func DefaultMsgParams() MsgParams { return msg.DefaultParams() }

// DefaultMPIConfig returns eager/rendezvous MPI defaults.
func DefaultMPIConfig() MPIConfig { return mpi.DefaultConfig() }

// DefaultPGASConfig returns a small symmetric global space.
func DefaultPGASConfig() PGASConfig { return pgas.DefaultConfig() }

// DefaultServeConfig returns the serving defaults (64 shards, 2
// replicas, 90% reads, 1M keys, round-robin routing, 25 us SLO).
func DefaultServeConfig() ServeConfig { return serve.DefaultConfig() }

// Serve routing policies.
const (
	ServeRoundRobin  = serve.PolicyRoundRobin
	ServeLeastLoaded = serve.PolicyLeastLoaded
	ServeAffinity    = serve.PolicyAffinity
)

// ValidateServeConfig checks cfg against an n-node deployment without
// booting anything, returning the config with defaults filled in. The
// scenario layer uses it to reject bad specs before cluster boot.
func ValidateServeConfig(cfg ServeConfig, nodes int) (ServeConfig, error) {
	err := cfg.Validate(nodes)
	return cfg, err
}

// DefaultLiveParams returns the live backend's defaults.
func DefaultLiveParams() LiveParams { return shm.DefaultParams() }

// Reduction operators for MPI collectives.
var (
	Sum = mpi.Sum
	Max = mpi.Max
	Min = mpi.Min
)

// Float64s and ToFloat64s convert float vectors to and from message
// payloads.
var (
	Float64s   = mpi.Float64s
	ToFloat64s = mpi.ToFloat64s
)

// AnyTag matches any tag in Comm.Recv.
const AnyTag = mpi.AnyTag

// Cluster is a booted TCCluster with kernels installed on every node:
// the top-level handle of this library.
type Cluster struct {
	*core.Cluster
	os  *kernel.OS
	mon *monitor.Monitor
	inj *fault.Injector
}

// Option customizes New beyond the hardware Config: kernel selection,
// observability, seeding. Options apply in order, so a later option
// overrides an earlier one.
type Option func(*buildOptions)

type buildOptions struct {
	cfg         Config
	kopt        KernelOptions
	monitorOn   bool
	monitorAddr string
	monitorOpts []MonitorOption
	faults      []FaultAction
	profileOn   bool
	profileOpts []ProfileOption
}

// WithKernelOptions selects the per-node OS configuration. The default
// is the paper's custom kernel (SMCDisabled=true); a stock kernel
// (SMCDisabled=false) reproduces the interrupt-leak failure mode the
// custom kernel exists to prevent.
func WithKernelOptions(kopt KernelOptions) Option {
	return func(b *buildOptions) { b.kopt = kopt }
}

// WithTracer installs an observability tracer — typically a Collector —
// receiving typed events from every layer: link serializations, credit
// stalls, routing faults, ring-full stalls, MPI barriers/rendezvous and
// firmware boot phases. See Cluster.Metrics for the aggregate view.
func WithTracer(t Tracer) Option {
	return func(b *buildOptions) { b.cfg.Tracer = t }
}

// WithSeed perturbs the cluster's stochastic models (cable fault
// streams). Identical topology+Config+Seed produce byte-identical
// event streams. Seed zero is the default streams.
func WithSeed(seed uint64) Option {
	return func(b *buildOptions) { b.cfg.Seed = seed }
}

// WithLegacyEventQueue runs the simulation on the original
// container/heap event queue instead of the allocation-free ladder
// queue. Both queues order events identically — (time, seq) — so
// results match to the picosecond; this option exists for paired
// benchmarking (tccbench -bench engine) and determinism cross-checks.
func WithLegacyEventQueue() Option {
	return func(b *buildOptions) { b.cfg.LegacyEventQueue = true }
}

// WithParallel runs the simulation on up to n worker goroutines: the
// cluster is partitioned by supernode, each partition advancing its own
// event queue, synchronized by a conservative time-windowed barrier
// whose width is the minimum cross-partition link latency (serialization
// plus cable flight — nothing crosses a partition cut faster). Parallel
// runs reach exactly the same final virtual time and per-link counters
// as serial runs; only the interleaving of causally independent events
// within a window differs. n <= 1 keeps the reference serial engine.
// Incompatible with WithLegacyEventQueue.
func WithParallel(n int) Option {
	return func(b *buildOptions) { b.cfg.Parallel = n }
}

// Partitioner decides how supernodes are grouped onto WithParallel
// partitions; see core.Partitioner. Implementations must be
// deterministic.
type Partitioner = core.Partitioner

// PartitionGraphCut returns the default partitioner for parallel runs:
// a greedy graph-cut over the external-link graph that balances
// expected event load while minimizing the affinity (inverse latency)
// of cut links — fewer, slower cross-partition links mean less mailbox
// traffic and wider conservative windows.
func PartitionGraphCut() Partitioner { return core.PartitionGraphCut() }

// PartitionBySupernode returns the original contiguous by-index
// partitioner: node i goes to partition i*p/n, matching the paper's
// supernode-chain physical order.
func PartitionBySupernode() Partitioner { return core.PartitionBySupernode() }

// WithPartitioner selects the partition map for WithParallel runs. The
// partitioner only shapes how the work is distributed; results are
// bit-identical across partitioners and worker counts.
func WithPartitioner(p Partitioner) Option {
	return func(b *buildOptions) { b.cfg.Partitioner = p }
}

// WithMonitor starts the live-monitoring subsystem on the cluster: an
// HTTP server on addr exposing /metrics (Prometheus text), /metrics.json
// (the document cmd/tcctop polls), /health, /alerts and /dump; a flight
// recorder sampling snapshot deltas into a bounded ring; and an alert
// watchdog evaluating health rules (dead link, credit-stall storm,
// ring-full burst, master-abort storm) against every sampling window.
// An empty addr enables sampling, recording and watchdogs without
// listening anywhere. Call Cluster.Close when done to stop the server:
//
//	c, err := tccluster.New(topo, cfg,
//		tccluster.WithTracer(tccluster.NewCollector(1<<16)),
//		tccluster.WithMonitor("127.0.0.1:9120",
//			tccluster.MonitorSampleEvery(50*tccluster.Microsecond),
//			tccluster.MonitorAutoDump("incident.json")))
func WithMonitor(addr string, opts ...MonitorOption) Option {
	return func(b *buildOptions) {
		b.monitorOn = true
		b.monitorAddr = addr
		b.monitorOpts = opts
	}
}

// WithProfile enables the simulation profiler: every instrumented
// layer attributes packet lifecycle time to its phase (tx-queue wait,
// link serialization, retry stalls, northbridge crossbar/hop, IO
// bridge, memory-controller service, CPU store issue, write-combining
// flush, receiver poll-to-delivery) into lock-free histograms, and
// parallel runs additionally account PDES runtime per partition
// (busy/barrier wall time, events, window occupancy, the cross-
// partition mailbox matrix). Profiling is observe-only: it never
// schedules events, so a profiled run is event-for-event identical to
// an unprofiled one. The profiler attaches after firmware boot, so the
// budget covers workload traffic.
//
// Read results with Cluster.Profile; combined with WithMonitor the
// summary is also served at /profile (JSON, ?format=prometheus).
// ProfileSpans() additionally emits per-packet phase spans into the
// tracer for Chrome-trace rendering (requires WithTracer):
//
//	c, err := tccluster.New(topo, cfg, tccluster.WithProfile())
//	...run a workload...
//	c.Profile().WriteText(os.Stdout)
func WithProfile(opts ...ProfileOption) Option {
	return func(b *buildOptions) {
		b.profileOn = true
		b.profileOpts = opts
	}
}

// ProfileSpans makes a WithProfile cluster emit one trace span per
// packet per phase (KindPhaseSpan), rendered as complete slices by
// WriteChromeTrace. Spans ride the tracer, so WithTracer must be set
// for them to land anywhere.
var ProfileSpans = prof.WithSpans

// WithFaults schedules a fault campaign against the cluster: each
// action (LinkDegrade, LinkDown, LinkFlap, RetrainStorm, NodeCrash,
// ...) applies at its absolute virtual time during Run/RunFor. Actions
// are not ordinary events — the executor cuts the timeline exactly at
// each action's timestamp (all events before it executed, none at or
// after it) and applies the mutation with the simulation parked, so a
// campaign produces bit-identical results on the serial and WithParallel
// engines. Actions timed before boot completes are deferred to the
// first instant after it:
//
//	c, err := tccluster.New(topo, cfg,
//		tccluster.WithFaults(
//			tccluster.LinkDownFor(1, 200*tccluster.Microsecond, 80*tccluster.Microsecond),
//			tccluster.NodeCrash(3, 500*tccluster.Microsecond)))
func WithFaults(actions ...FaultAction) Option {
	return func(b *buildOptions) { b.faults = append(b.faults, actions...) }
}

// Monitor sub-options, re-exported so callers configure WithMonitor
// without importing internal packages.
var (
	// MonitorSampleEvery sets the virtual-time width of one sampling
	// window (default 100 us).
	MonitorSampleEvery = monitor.WithSampleEvery
	// MonitorWindows bounds the flight recorder's retained windows.
	MonitorWindows = monitor.WithRecorderWindows
	// MonitorRules replaces the default watchdog rule set.
	MonitorRules = monitor.WithRules
	// MonitorOnAlert registers an alert raise/resolve callback. It runs
	// on the simulation goroutine; keep it short.
	MonitorOnAlert = monitor.WithAlertCallback
	// MonitorAutoDump dumps the flight recorder to a file whenever an
	// alert is raised.
	MonitorAutoDump = monitor.WithAutoDump
)

// Watchdog rule constructors, re-exported for MonitorRules.
var (
	DeadLinkRule    = monitor.DeadLinkRule
	CreditStallRule = monitor.CreditStallRule
	RingFullRule    = monitor.RingFullRule
	MasterAbortRule = monitor.MasterAbortRule
)

// New builds, boots and installs kernels on a cluster over the given
// topology. With no options it boots the paper's custom kernel (SMC
// disabled) with tracing off:
//
//	c, err := tccluster.New(topo, cfg)
//
// Options select the kernel, tracing and seeding:
//
//	col := tccluster.NewCollector(1 << 16)
//	c, err := tccluster.New(topo, cfg,
//		tccluster.WithTracer(col),
//		tccluster.WithSeed(42))
func New(topo *Topology, cfg Config, opts ...Option) (*Cluster, error) {
	b := buildOptions{cfg: cfg, kopt: KernelOptions{SMCDisabled: true}}
	for _, opt := range opts {
		opt(&b)
	}
	if b.profileOn {
		// Constructed here, not in the Option closure, so one Option
		// value reused across New calls gives every cluster its own
		// profiler (workloads that build serial/parallel twins depend on
		// their budgets staying separate).
		b.cfg.Profiler = prof.New(b.profileOpts...)
	}
	c, err := core.New(topo, b.cfg)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{Cluster: c, os: kernel.Install(c, b.kopt)}
	if len(b.faults) > 0 {
		inj, err := fault.NewInjector(c, fault.NewCampaign(b.faults...))
		if err != nil {
			return nil, err
		}
		cl.inj = inj
		c.SetActionSource(inj)
	}
	if b.monitorOn {
		mopts := append([]MonitorOption{
			monitor.WithLinkStatus(func() []monitor.LinkStatus {
				return monitorLinkStatuses(c)
			}),
			monitor.WithTracer(b.cfg.Tracer),
			monitor.WithProfiler(b.cfg.Profiler),
		}, b.monitorOpts...)
		cl.mon = monitor.New(c, mopts...)
		c.SetSampleHook(cl.mon.Interval(), cl.mon.OnSample)
		if b.monitorAddr != "" {
			if err := cl.mon.Serve(b.monitorAddr); err != nil {
				return nil, err
			}
		}
	}
	return cl, nil
}

// monitorLinkStatuses adapts core's link reporting to the monitor's
// core-agnostic type.
func monitorLinkStatuses(c *core.Cluster) []monitor.LinkStatus {
	ls := c.LinkStatuses()
	out := make([]monitor.LinkStatus, len(ls))
	for i, l := range ls {
		out[i] = monitor.LinkStatus{ID: l.ID, State: l.State, Type: l.Type,
			Width: l.Width, SpeedMHz: l.SpeedMHz, Bandwidth: l.Bandwidth}
	}
	return out
}

// Monitor returns the live-monitoring subsystem, nil unless the cluster
// was built WithMonitor.
func (c *Cluster) Monitor() *Monitor { return c.mon }

// Profile assembles the current profiling summary — the per-phase
// latency budget, per-link/per-node breakdowns, critical-path ranking
// and (parallel runs) PDES accounting. Nil unless the cluster was
// built WithProfile. Safe to call mid-run: histograms are atomics.
func (c *Cluster) Profile() *ProfileSummary {
	pr := c.Cluster.Profiler()
	if pr == nil {
		return nil
	}
	s := pr.Summary()
	return &s
}

// Faults returns the campaign injector, nil unless the cluster was
// built WithFaults.
func (c *Cluster) Faults() *FaultInjector { return c.inj }

// Close releases live resources (the monitor's HTTP listener). It is
// safe on clusters built without a monitor, and safe to call more than
// once.
func (c *Cluster) Close() error {
	if c.mon == nil {
		return nil
	}
	return c.mon.Close()
}

// OS exposes the kernel layer (drivers, mappings, SMC counters).
func (c *Cluster) OS() *kernel.OS { return c.os }

// Kernel returns node i's kernel.
func (c *Cluster) Kernel(i int) *kernel.Kernel { return c.os.Kernel(i) }

// OpenChannel opens a unidirectional message channel from node src to
// node dst.
func (c *Cluster) OpenChannel(src, dst int, par MsgParams) (*Sender, *Receiver, error) {
	return msg.Open(c.os, src, dst, par)
}

// NewWorld opens an MPI world spanning all nodes.
func (c *Cluster) NewWorld(cfg MPIConfig) (*World, error) {
	return mpi.NewWorld(c.os, cfg)
}

// NewSpace creates a partitioned global address space spanning all
// nodes.
func (c *Cluster) NewSpace(cfg PGASConfig) (*Space, error) {
	return pgas.New(c.os, cfg)
}

// NewService deploys a sharded, replicated KV/query service over every
// node: consistent-hash placement, a full channel mesh, per-node
// open-loop clients with token-bucket admission. Call Service.Start,
// drive the cluster, then read Service.Report. On a cluster built
// WithMonitor the service's live snapshot appears in /metrics.json
// (and the tcctop SERVE panel) automatically.
func (c *Cluster) NewService(cfg ServeConfig) (*Service, error) {
	s, err := serve.New(c.os, cfg)
	if err != nil {
		return nil, err
	}
	if c.mon != nil {
		c.mon.SetServeSource(func() monitor.ServeStatus {
			sn := s.Snapshot()
			return monitor.ServeStatus{
				Requests: sn.Requests, Completed: sn.Completed,
				InSLO: sn.InSLO, Timeouts: sn.Timeouts, Shed: sn.Shed,
				DeadMarks: sn.DeadMarks, P50PS: sn.P50PS, P99PS: sn.P99PS,
				P999PS: sn.P999PS, Goodput: sn.Goodput,
			}
		})
	}
	return s, nil
}

// NewLiveChannel creates a real-goroutine channel implementing the same
// ring protocol on real memory (wall-clock benchmarking backend).
func NewLiveChannel(par LiveParams) (*LiveSender, *LiveReceiver, error) {
	return shm.NewChannel(par)
}

// Now returns the cluster's virtual time. On parallel clusters this is
// the global clock — the aligned partition clocks between runs.
func (c *Cluster) Now() Time { return c.Cluster.Now() }

package tccluster_test

import (
	"bytes"
	"fmt"
	"testing"

	tccluster "repro"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	topo, err := tccluster.Chain(2)
	if err != nil {
		t.Fatal(err)
	}
	c, err := tccluster.New(topo, tccluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s, r, err := c.OpenChannel(0, 1, tccluster.DefaultMsgParams())
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	r.Recv(func(d []byte, err error) {
		if err != nil {
			t.Errorf("recv: %v", err)
		}
		got = d
	})
	s.Send([]byte("public api"), func(err error) {
		if err != nil {
			t.Errorf("send: %v", err)
		}
	})
	c.Run()
	if string(got) != "public api" {
		t.Errorf("got %q", got)
	}
	if c.Now() == 0 {
		t.Error("virtual time did not advance")
	}
}

func TestPublicAPIMPIAndPGAS(t *testing.T) {
	topo, err := tccluster.Chain(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := tccluster.New(topo, tccluster.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, err := c.NewWorld(tccluster.DefaultMPIConfig())
	if err != nil {
		t.Fatal(err)
	}
	results := make([][]float64, 3)
	for rk := 0; rk < 3; rk++ {
		rk := rk
		w.Rank(rk).Allreduce([]float64{float64(rk + 1)}, tccluster.Sum, func(v []float64, err error) {
			if err != nil {
				t.Errorf("allreduce: %v", err)
			}
			results[rk] = v
		})
	}
	c.Run()
	for rk := 0; rk < 3; rk++ {
		if len(results[rk]) != 1 || results[rk][0] != 6 {
			t.Errorf("rank %d allreduce = %v", rk, results[rk])
		}
	}

	sp, err := c.NewSpace(tccluster.DefaultPGASConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp.PutStrict(0, sp.Size()-8, []byte{1, 2, 3, 4, 5, 6, 7, 8}, func(err error) {
		if err != nil {
			t.Errorf("put: %v", err)
		}
	})
	c.Run()
	var got []byte
	sp.Get(2, sp.Size()-8, 8, func(d []byte, err error) {
		if err != nil {
			t.Errorf("get: %v", err)
		}
		got = d
	})
	c.Run()
	if len(got) != 8 || got[0] != 1 {
		t.Errorf("pgas got %v", got)
	}
}

func TestLiveChannel(t *testing.T) {
	s, r, err := tccluster.NewLiveChannel(tccluster.DefaultLiveParams())
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{7}, 100)
	done := make(chan []byte, 1)
	go func() {
		buf := make([]byte, s.MaxMessage())
		n, err := r.Recv(buf)
		if err != nil {
			t.Errorf("recv: %v", err)
		}
		done <- append([]byte(nil), buf[:n]...)
	}()
	if err := s.Send(want); err != nil {
		t.Fatal(err)
	}
	if got := <-done; !bytes.Equal(got, want) {
		t.Error("live channel corrupted payload")
	}
}

// Example demonstrates the quickstart from the package documentation.
func Example() {
	topo, _ := tccluster.Chain(2)
	c, err := tccluster.New(topo, tccluster.DefaultConfig())
	if err != nil {
		panic(err)
	}
	s, r, _ := c.OpenChannel(0, 1, tccluster.DefaultMsgParams())
	r.Recv(func(data []byte, err error) { fmt.Printf("%s\n", data) })
	s.Send([]byte("hello over the host interface"), func(error) {})
	c.Run()
	// Output: hello over the host interface
}
